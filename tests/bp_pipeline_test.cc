/**
 * @file
 * Tests for the BP metadata-pipeline overhaul: same-line memo
 * coalescing, tree-walk memoization, batched deferred replay, and the
 * metadata-range walker — all of which must be invisible in the
 * model's outputs.
 *
 * Three layers:
 *  - unit: memo arming/invalidation semantics in MetaCache, and the
 *    BaselineWalker's bit-equality with the point queries;
 *  - property: a touch-then-access stream and an access-only stream
 *    drive two caches identically, and DramSystem::accessBatch
 *    matches per-request access() cycle for cycle;
 *  - golden: BP/MGX_MAC cells under a deliberately tiny (2 KB)
 *    metadata cache — constant evictions, so memos go stale at the
 *    highest possible rate — pinned against numbers captured from the
 *    pre-overhaul engine (commit 2e6544b).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/rng.h"
#include "dram/dram_system.h"
#include "protection/meta_cache.h"
#include "protection/metadata_layout.h"
#include "sim/experiment.h"

namespace mgx {
namespace {

using protection::CacheResult;
using protection::MetaCache;
using protection::MetaClass;
using protection::MetadataLayout;
using protection::ProtectionConfig;
using protection::Scheme;

// ---------------------------------------------------------------------
// MetaCache memos
// ---------------------------------------------------------------------

TEST(MetaCacheMemo, DefaultMemoNeverMatches)
{
    MetaCache cache(1 << 10, 4);
    MetaCache::Memo memo;
    EXPECT_FALSE(cache.touch(memo, 0x0, false));
}

TEST(MetaCacheMemo, AccessArmsMemoForFollowUpTouches)
{
    MetaCache cache(1 << 10, 4);
    MetaCache::Memo memo;
    EXPECT_FALSE(cache.access(0x40, false, MetaClass::Vn, &memo).hit);
    // Same line: the memo short-circuits, and it is a real hit (the
    // line was just allocated).
    EXPECT_TRUE(cache.touch(memo, 0x40, false));
    // A different line never matches the memo.
    EXPECT_FALSE(cache.touch(memo, 0x80, false));
}

TEST(MetaCacheMemo, EvictionBumpsGenerationAndKillsStaleMemo)
{
    // 256 B, 2 ways => 2 sets; lines 0x0, 0x100, 0x200 share set 0.
    MetaCache cache(256, 2);
    MetaCache::Memo memo;
    cache.access(0x0, false, MetaClass::Vn, &memo);
    const u64 gen0 = cache.generation();
    EXPECT_TRUE(cache.touch(memo, 0x0, false));

    // Fill the set until 0x0 is the LRU victim.
    cache.access(0x100, false, MetaClass::Tree);
    cache.access(0x200, false, MetaClass::Tree);
    EXPECT_GT(cache.generation(), gen0)
        << "an eviction must bump the generation";
    EXPECT_FALSE(cache.touch(memo, 0x0, false))
        << "a memo whose line was evicted must not touch";
    // The full access path recovers (and re-arms the memo).
    EXPECT_FALSE(cache.access(0x0, false, MetaClass::Vn, &memo).hit);
    EXPECT_TRUE(cache.touch(memo, 0x0, false));
}

TEST(MetaCacheMemo, ColdFillsDoNotBumpGeneration)
{
    // Filling invalid ways replaces nothing a memo can point at, so
    // the generation — and with it the memo fast-accept — survives.
    MetaCache cache(1 << 10, 4);
    MetaCache::Memo memo;
    cache.access(0x0, false, MetaClass::Vn, &memo);
    const u64 gen0 = cache.generation();
    cache.access(0x40, false, MetaClass::Vn);
    cache.access(0x80, false, MetaClass::Vn);
    EXPECT_EQ(cache.generation(), gen0);
    EXPECT_TRUE(cache.touch(memo, 0x0, false));
}

TEST(MetaCacheMemo, FlushAndResetKillMemos)
{
    MetaCache cache(1 << 10, 4);
    MetaCache::Memo memo;
    cache.access(0x0, true, MetaClass::Vn, &memo);
    std::vector<MetaCache::FlushedLine> dirty;
    cache.flush(dirty);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_FALSE(cache.touch(memo, 0x0, false))
        << "flush invalidates every line, so every memo is stale";

    cache.access(0x0, false, MetaClass::Vn, &memo);
    cache.reset();
    EXPECT_FALSE(cache.touch(memo, 0x0, false));
}

TEST(MetaCacheMemo, TouchAccumulatesDirtyForLaterWriteback)
{
    // A read arms the memo clean; a touched write must still mark the
    // line dirty, or the overhaul would silently drop a writeback.
    MetaCache cache(1 << 10, 4);
    MetaCache::Memo memo;
    cache.access(0x0, false, MetaClass::Mac, &memo);
    EXPECT_TRUE(cache.touch(memo, 0x0, true));
    std::vector<MetaCache::FlushedLine> dirty;
    cache.flush(dirty);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].addr, 0x0u);
    EXPECT_EQ(dirty[0].cls, MetaClass::Mac);
}

TEST(MetaCacheMemo, TouchStreamIsBitwiseEquivalentToAccessStream)
{
    // Replay one random line stream through two caches: plain
    // access() on one; touch-with-access-fallback (the engine's
    // pattern) on the other. Every CacheResult, counter, and the
    // final flush set must match — touch is the hit path, not an
    // approximation of it.
    StatGroup stats_a("a"), stats_b("b");
    MetaCache plain(2 << 10, 8, &stats_a);
    MetaCache memoized(2 << 10, 8, &stats_b);
    MetaCache::Memo memos[3]; // one per class, like the engine
    Rng rng(0xb9);

    for (int i = 0; i < 20000; ++i) {
        // A few hot lines plus a long tail forces hits, misses,
        // evictions, and memo staleness in one stream.
        const u32 cls_idx = static_cast<u32>(rng.next() % 3);
        const auto cls = static_cast<MetaClass>(cls_idx);
        const u64 span = (rng.next() & 1) ? 8 : 1024;
        const Addr addr =
            (0x10000 * cls_idx + 0x40 * (rng.next() % span));
        const bool dirty = (rng.next() & 3) == 0;

        const CacheResult want = plain.access(addr, dirty, cls);
        if (memoized.touch(memos[cls_idx], addr, dirty)) {
            EXPECT_TRUE(want.hit) << "touch succeeded on a miss";
            EXPECT_FALSE(want.writeback);
        } else {
            const CacheResult got =
                memoized.access(addr, dirty, cls, &memos[cls_idx]);
            EXPECT_EQ(want.hit, got.hit);
            EXPECT_EQ(want.writeback, got.writeback);
            if (want.writeback) {
                EXPECT_EQ(want.victimAddr, got.victimAddr);
                EXPECT_EQ(want.victimClass, got.victimClass);
            }
        }
    }
    EXPECT_EQ(stats_a.get("meta_cache_hits"),
              stats_b.get("meta_cache_hits"));
    EXPECT_EQ(stats_a.get("meta_cache_misses"),
              stats_b.get("meta_cache_misses"));
    EXPECT_EQ(stats_a.get("meta_cache_writebacks"),
              stats_b.get("meta_cache_writebacks"));

    std::vector<MetaCache::FlushedLine> da, db;
    plain.flush(da);
    memoized.flush(db);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].addr, db[i].addr);
        EXPECT_EQ(da[i].cls, db[i].cls);
    }
}

// ---------------------------------------------------------------------
// MetadataLayout::BaselineWalker
// ---------------------------------------------------------------------

TEST(BaselineWalker, MatchesPointQueriesAcrossTheRange)
{
    ProtectionConfig cfg;
    cfg.scheme = Scheme::BP;
    const MetadataLayout layout(cfg);
    ASSERT_GE(layout.treeLevels(), 1u);

    // An unaligned-to-anything start exercises the offset seeding.
    const Addr begin = 37 * 64 * cfg.baselineGranularity;
    MetadataLayout::BaselineWalker walker =
        layout.baselineWalker(begin);
    for (u64 i = 0; i < 4096; ++i, walker.next()) {
        const Addr block = begin + i * cfg.baselineGranularity;
        ASSERT_EQ(walker.vnLine(), layout.vnLineAddr(block))
            << "block " << i;
        ASSERT_EQ(walker.treeNode1(), layout.treeNodeAddr(1, block))
            << "block " << i;
        ASSERT_EQ(walker.macLine(),
                  layout.macLineAddr(block, cfg.baselineGranularity))
            << "block " << i;
    }
}

// ---------------------------------------------------------------------
// DramSystem::accessBatch
// ---------------------------------------------------------------------

TEST(AccessBatch, MatchesSequentialAccessCycleForCycle)
{
    // One system serves a batch, the other the same requests one by
    // one; completion times, access counts, and every DRAM statistic
    // must agree. The stream interleaves two ascending line runs with
    // same-line repeats and random jumps — the shapes the predictor
    // slots do and do not catch.
    dram::Ddr4Config dcfg;
    dram::DramSystem batched(dcfg);
    dram::DramSystem sequential(dcfg);

    std::mt19937_64 rng(0x5eed);
    Addr run_a = 0x100000, run_b = 0x9000000;
    std::vector<dram::Request> reqs;
    Cycles arrival = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr addr;
        switch (rng() % 8) {
          case 0: addr = run_a; break;            // same line again
          case 1: case 2: addr = run_a += 64; break;
          case 3: case 4: addr = run_b += 64; break;
          default: addr = (rng() % (1u << 30)) & ~63ull; break;
        }
        const bool write = (rng() & 1) != 0;
        arrival += rng() % 32;
        reqs.push_back({addr, write, arrival});
    }

    Cycles seq_done = 0;
    for (const dram::Request &req : reqs)
        seq_done = std::max(seq_done, sequential.access(req));
    const Cycles batch_done = batched.accessBatch(reqs);

    EXPECT_EQ(batch_done, seq_done);
    EXPECT_EQ(batched.accessCount(), sequential.accessCount());
    EXPECT_EQ(batched.lastCompletion(), sequential.lastCompletion());
    EXPECT_EQ(batched.stats().counters(),
              sequential.stats().counters());
}

TEST(AccessBatch, EmptyBatchIsANoOp)
{
    dram::Ddr4Config dcfg;
    dram::DramSystem dram(dcfg);
    EXPECT_EQ(dram.accessBatch({}), 0u);
    EXPECT_EQ(dram.accessCount(), 0u);
}

// ---------------------------------------------------------------------
// Golden small-cache BP cells
// ---------------------------------------------------------------------

struct GoldenRow
{
    const char *workload;
    const char *platform;
    Scheme scheme;
    Cycles cycles;
    u64 data, expand, mac, vn, tree;
};

// Captured from the pre-overhaul engine (commit 2e6544b) with
// metaCacheBytes = 2 KB; regenerate only when the *model* changes.
constexpr GoldenRow kSmallCacheGolden[] = {
    {"core/matmul", "Cloud", Scheme::BP, 1222951, 8388608, 0, 1580032,
     1587200, 474112},
    {"core/matmul", "Cloud", Scheme::MGX_MAC, 943745, 8388608, 0,
     131072, 1580032, 458752},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::BP, 429009, 3921664,
     0, 780352, 786368, 1190720},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::MGX_MAC, 361256,
     3921664, 0, 271296, 779968, 1150912},
    {"video/h264?frames=2", "Genome", Scheme::BP, 3867202, 3110400, 0,
     777600, 778112, 205184},
    {"video/h264?frames=2", "Genome", Scheme::MGX_MAC, 3667906,
     3110400, 0, 48704, 777600, 187008},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::BP, 166376,
     153600, 0, 37184, 37312, 78272},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::MGX_MAC, 156273,
     153600, 0, 20800, 32320, 24000},
};

TEST(GoldenSmallCache, EvictionHeavyCellsMatchPreOverhaulEngine)
{
    // A 2 KB cache (32 lines) under multi-MB metadata footprints
    // evicts on nearly every miss, so memos stale constantly and the
    // deferred queues fill with victim writebacks — the worst case
    // for every mechanism of the overhaul.
    ProtectionConfig cfg;
    cfg.metaCacheBytes = 2 << 10;
    sim::ResultSet rs =
        sim::Experiment()
            .workloads({"core/matmul", "dnn/DLRM?task=inference",
                        "video/h264?frames=2",
                        "genome/chr1PacBio?reads=2"})
            .schemes({Scheme::BP, Scheme::MGX_MAC})
            .config(cfg)
            .run();
    for (const GoldenRow &row : kSmallCacheGolden) {
        const sim::RunResult *r =
            rs.find(row.workload, row.platform, row.scheme);
        ASSERT_NE(r, nullptr)
            << row.workload << " " << protection::schemeName(row.scheme);
        EXPECT_EQ(r->totalCycles, row.cycles) << row.workload;
        EXPECT_EQ(r->traffic.dataBytes, row.data) << row.workload;
        EXPECT_EQ(r->traffic.expandBytes, row.expand) << row.workload;
        EXPECT_EQ(r->traffic.macBytes, row.mac) << row.workload;
        EXPECT_EQ(r->traffic.vnBytes, row.vn) << row.workload;
        EXPECT_EQ(r->traffic.treeBytes, row.tree) << row.workload;
    }
}

} // namespace
} // namespace mgx
