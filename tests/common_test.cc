/**
 * @file
 * Tests for the common substrate: bit utilities, the deterministic
 * RNG, and the stats counters.
 */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace mgx {
namespace {

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_TRUE(isPow2(1ull << 40));
}

TEST(Bitops, Log2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(1ull << 33), 33u);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Bitops, Align)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(~u64{0}, 0, 64), ~u64{0});
    EXPECT_EQ(bits(0b1011000, 3, 4), 0b1011u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ParetoHeavyTail)
{
    Rng rng(13);
    u64 max_seen = 0;
    double mean = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        u64 v = rng.pareto(1.8, 1.0);
        max_seen = std::max(max_seen, v);
        mean += static_cast<double>(v);
    }
    mean /= n;
    EXPECT_GE(max_seen, 50u);  // heavy tail produces large outliers
    EXPECT_LT(mean, 10.0);     // but the bulk is small
}

TEST(Stats, AddSetGet)
{
    StatGroup stats("test");
    EXPECT_EQ(stats.get("missing"), 0u);
    stats.add("hits");
    stats.add("hits", 4);
    EXPECT_EQ(stats.get("hits"), 5u);
    stats.set("hits", 2);
    EXPECT_EQ(stats.get("hits"), 2u);
}

TEST(Stats, Ratio)
{
    StatGroup stats("test");
    stats.set("num", 30);
    stats.set("den", 60);
    EXPECT_DOUBLE_EQ(stats.ratio("num", "den"), 0.5);
    EXPECT_DOUBLE_EQ(stats.ratio("num", "zero"), 0.0);
}

TEST(Stats, HandleAndStringApiShareSlots)
{
    StatGroup stats("test");
    StatGroup::Counter hits = stats.counter("hits");
    EXPECT_TRUE(hits.valid());
    hits.add();
    hits += 4;
    ++hits;
    EXPECT_EQ(stats.get("hits"), 6u);   // handle bumps visible by name
    stats.add("hits", 10);
    EXPECT_EQ(hits.value(), 16u);       // and vice versa
    // Resolving the same name twice yields the same slot.
    StatGroup::Counter again = stats.counter("hits");
    again.add();
    EXPECT_EQ(hits.value(), 17u);
}

TEST(Stats, NullCounterIsASafeSink)
{
    StatGroup::Counter null;
    EXPECT_FALSE(null.valid());
    null.add(42); // must not crash
    ++null;
    EXPECT_EQ(null.value(), 0u);
}

TEST(Stats, ClearKeepsHandlesValid)
{
    StatGroup stats("test");
    StatGroup::Counter c = stats.counter("events");
    c += 7;
    stats.clear();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(stats.get("events"), 0u);
    c.add(3); // handle survives the clear
    EXPECT_EQ(stats.get("events"), 3u);
}

TEST(Stats, CountersSnapshotIsSortedByKey)
{
    StatGroup stats("test");
    stats.counter("b_second").add(2);
    stats.counter("a_first").add(1);
    auto snap = stats.counters();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.begin()->first, "a_first");
    EXPECT_EQ(snap.at("b_second"), 2u);
}

TEST(Types, DataClassNames)
{
    EXPECT_STREQ(dataClassName(DataClass::Feature), "feature");
    EXPECT_STREQ(dataClassName(DataClass::GraphMatrix), "graph-matrix");
    EXPECT_STREQ(accessTypeName(AccessType::Read), "read");
}

} // namespace
} // namespace mgx
