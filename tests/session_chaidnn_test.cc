/**
 * @file
 * Tests for the secure-session setup (§II) and the CHaiDNN case
 * study (§VI-C).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dnn/chaidnn.h"
#include "dnn/models.h"
#include "protection/session.h"

namespace mgx {
namespace {

using protection::AttestationReport;
using protection::SecureSession;

crypto::Key
deviceSecret()
{
    crypto::Key k{};
    for (int i = 0; i < 16; ++i)
        k[static_cast<std::size_t>(i)] = static_cast<u8>(0xd0 + i);
    return k;
}

std::vector<u8>
bytes(const char *s)
{
    return {s, s + std::string(s).size()};
}

// -- SecureSession ----------------------------------------------------------------

TEST(SecureSession, ReportVerifies)
{
    auto kernel = bytes("resnet50-kernel-v1");
    SecureSession session(deviceSecret(), 12345, kernel,
                          bytes("fw-1.0"), 1);
    EXPECT_TRUE(SecureSession::verifyReport(
        deviceSecret(), session.report(), crypto::sha256(kernel),
        12345));
}

TEST(SecureSession, WrongKernelHashRejected)
{
    auto kernel = bytes("genuine-kernel");
    SecureSession session(deviceSecret(), 7, kernel, bytes("fw"), 1);
    EXPECT_FALSE(SecureSession::verifyReport(
        deviceSecret(), session.report(),
        crypto::sha256(bytes("malicious-kernel")), 7));
}

TEST(SecureSession, StaleNonceRejected)
{
    auto kernel = bytes("kernel");
    SecureSession session(deviceSecret(), 7, kernel, bytes("fw"), 1);
    EXPECT_FALSE(SecureSession::verifyReport(
        deviceSecret(), session.report(), crypto::sha256(kernel), 8));
}

TEST(SecureSession, ForgedReportMacRejected)
{
    auto kernel = bytes("kernel");
    SecureSession session(deviceSecret(), 7, kernel, bytes("fw"), 1);
    AttestationReport forged = session.report();
    forged.reportMac[0] ^= 1;
    EXPECT_FALSE(SecureSession::verifyReport(
        deviceSecret(), forged, crypto::sha256(kernel), 7));
}

TEST(SecureSession, FreshKeysPerSession)
{
    auto kernel = bytes("kernel");
    SecureSession s1(deviceSecret(), 7, kernel, bytes("fw"), 1);
    SecureSession s2(deviceSecret(), 7, kernel, bytes("fw"), 2);
    EXPECT_NE(s1.encryptionKey(), s2.encryptionKey());
    EXPECT_NE(s1.macKey(), s2.macKey());
    EXPECT_NE(s1.encryptionKey(), s1.macKey());
}

TEST(SecureSession, KeysNeverEqualDeviceSecret)
{
    SecureSession s(deviceSecret(), 3, bytes("k"), bytes("f"), 9);
    EXPECT_NE(s.encryptionKey(), deviceSecret());
    EXPECT_NE(s.macKey(), deviceSecret());
}

TEST(SecureSession, EndToEndWithSecureMemory)
{
    // Full §II workflow: establish, verify attestation, then run
    // protected reads/writes under the session keys.
    auto kernel = bytes("matmul-kernel");
    SecureSession session(deviceSecret(), 42, kernel, bytes("fw"), 5);
    ASSERT_TRUE(SecureSession::verifyReport(deviceSecret(),
                                            session.report(),
                                            crypto::sha256(kernel),
                                            42));
    auto mem = session.makeSecureMemory(64);
    std::vector<u8> data(64, 0x5a);
    mem.write(0, data, 1);
    std::vector<u8> out(64);
    ASSERT_TRUE(mem.read(0, out, 1));
    EXPECT_EQ(out, data);
}

// -- CHaiDNN -----------------------------------------------------------------------

TEST(ChaiDnn, AlexNetUnderTwentyInstructions)
{
    // The paper's claim: AlexNet in fewer than 20 instructions.
    auto program = dnn::compileForChai(dnn::alexnet());
    EXPECT_LT(program.instructions.size(), 20u);
    EXPECT_GE(program.instructions.size(), 11u); // 8 conv/fc + 3 pool
}

TEST(ChaiDnn, VnTableIsTiny)
{
    auto program = dnn::compileForChai(dnn::alexnet());
    // One 8 B entry per instruction plus two counters.
    EXPECT_EQ(program.vnTableBytes(),
              (program.instructions.size() + 2) * 8);
    EXPECT_LT(program.vnTableBytes(), 256u);
}

TEST(ChaiDnn, DenseLowersToConvolution)
{
    auto program = dnn::compileForChai(dnn::alexnet());
    int convs = 0, pools = 0;
    for (const auto &inst : program.instructions) {
        convs += inst.op == dnn::ChaiOp::Convolution;
        pools += inst.op == dnn::ChaiOp::Pooling;
    }
    EXPECT_EQ(convs, 8); // 5 conv + 3 fc
    EXPECT_EQ(pools, 3);
}

TEST(ChaiDnn, EltwiseFusesAway)
{
    // ResNet's residual adds are fused, so instruction count is well
    // below the layer count.
    auto program = dnn::compileForChai(dnn::resnet50());
    EXPECT_LT(program.instructions.size(),
              dnn::resnet50().layers.size());
}

TEST(ChaiDnn, UnsupportedModelsRejected)
{
    EXPECT_FALSE(dnn::chaiSupports(dnn::dlrm()));
    EXPECT_FALSE(dnn::chaiSupports(dnn::bertBase()));
    EXPECT_TRUE(dnn::chaiSupports(dnn::vgg16()));
    EXPECT_TRUE(dnn::chaiSupports(dnn::googlenet()));
}

TEST(ChaiDnn, DistinctVnTableSlots)
{
    auto program = dnn::compileForChai(dnn::vgg16());
    for (std::size_t i = 0; i < program.instructions.size(); ++i)
        EXPECT_EQ(program.instructions[i].vnTableIndex, i);
}

} // namespace
} // namespace mgx
