/**
 * @file
 * AES-128 correctness against the FIPS-197 appendix vectors plus
 * structural properties (roundtrip, avalanche, key sensitivity).
 */

#include <gtest/gtest.h>

#include "crypto/aes128.h"

namespace mgx::crypto {
namespace {

Block
blockFromHex(const char *hex)
{
    Block b{};
    for (int i = 0; i < 16; ++i) {
        auto nib = [](char c) -> u8 {
            if (c >= '0' && c <= '9')
                return static_cast<u8>(c - '0');
            return static_cast<u8>(c - 'a' + 10);
        };
        b[i] = static_cast<u8>((nib(hex[2 * i]) << 4) |
                               nib(hex[2 * i + 1]));
    }
    return b;
}

TEST(Aes128, Fips197AppendixB)
{
    // FIPS-197 Appendix B example.
    const Key key = blockFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const Block pt = blockFromHex("3243f6a8885a308d313198a2e0370734");
    const Block expect =
        blockFromHex("3925841d02dc09fbdc118597196a0b32");
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(pt), expect);
}

TEST(Aes128, Fips197AppendixC1)
{
    // FIPS-197 Appendix C.1 known-answer test.
    const Key key = blockFromHex("000102030405060708090a0b0c0d0e0f");
    const Block pt = blockFromHex("00112233445566778899aabbccddeeff");
    const Block expect =
        blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(pt), expect);
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    const Key key = blockFromHex("000102030405060708090a0b0c0d0e0f");
    Aes128 aes(key);
    Block pt{};
    for (int i = 0; i < 16; ++i)
        pt[i] = static_cast<u8>(i * 17 + 3);
    EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
}

TEST(Aes128, DecryptKnownAnswer)
{
    const Key key = blockFromHex("000102030405060708090a0b0c0d0e0f");
    const Block ct = blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    const Block expect =
        blockFromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key);
    EXPECT_EQ(aes.decryptBlock(ct), expect);
}

TEST(Aes128, AvalancheOnPlaintextBit)
{
    const Key key = blockFromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Aes128 aes(key);
    Block pt{};
    Block ct1 = aes.encryptBlock(pt);
    pt[0] ^= 1;
    Block ct2 = aes.encryptBlock(pt);
    int diff_bits = 0;
    for (int i = 0; i < 16; ++i)
        diff_bits += __builtin_popcount(ct1[i] ^ ct2[i]);
    // A single flipped input bit should change roughly half the output.
    EXPECT_GT(diff_bits, 32);
    EXPECT_LT(diff_bits, 96);
}

TEST(Aes128, DifferentKeysDiverge)
{
    Key k1{}, k2{};
    k2[15] = 1;
    Aes128 a1(k1), a2(k2);
    Block pt{};
    EXPECT_NE(a1.encryptBlock(pt), a2.encryptBlock(pt));
}

TEST(Aes128, EncryptionIsDeterministic)
{
    Key key{};
    key[0] = 0x42;
    Aes128 a1(key), a2(key);
    Block pt{};
    pt[5] = 9;
    EXPECT_EQ(a1.encryptBlock(pt), a2.encryptBlock(pt));
}

} // namespace
} // namespace mgx::crypto
