/**
 * @file
 * MGX core tests: counter construction (Fig. 6), the on-chip VN state,
 * the security-invariant checker, and the Fig. 4 tiled-MatMul kernel's
 * exact VN sequence.
 */

#include <gtest/gtest.h>

#include "core/counter.h"
#include "core/invariant_checker.h"
#include "core/matmul_kernel.h"
#include "core/vn_state.h"

namespace mgx::core {
namespace {

// -- counter construction --------------------------------------------------------

TEST(Counter, TagOccupiesTopBits)
{
    Vn vn = makeVn(VnTag::Gradient, 1);
    EXPECT_EQ(vnTag(vn), VnTag::Gradient);
    EXPECT_EQ(vnValue(vn), 1u);
    EXPECT_EQ(vn >> 62, 0b10u);
}

TEST(Counter, ClassesMapToDistinctTags)
{
    EXPECT_NE(makeVn(DataClass::Feature, 7),
              makeVn(DataClass::Weight, 7));
    EXPECT_NE(makeVn(DataClass::Weight, 7),
              makeVn(DataClass::Gradient, 7));
    EXPECT_EQ(vnValue(makeVn(DataClass::Feature, 7)),
              vnValue(makeVn(DataClass::Weight, 7)));
}

TEST(Counter, GraphAndVideoClassesShareFeatureTag)
{
    EXPECT_EQ(tagForClass(DataClass::GraphVector), VnTag::Feature);
    EXPECT_EQ(tagForClass(DataClass::VideoFrame), VnTag::Feature);
    EXPECT_EQ(tagForClass(DataClass::GraphMatrix), VnTag::Weight);
    EXPECT_EQ(tagForClass(DataClass::GenomeQuery), VnTag::Gradient);
}

TEST(CounterDeathTest, OverflowRequiresRekey)
{
    // Values beyond 62 bits must abort rather than silently wrap —
    // counter reuse would break AES-CTR security.
    EXPECT_EXIT(makeVn(VnTag::Feature, kVnValueMax + 1),
                ::testing::ExitedWithCode(1), "re-key");
}

TEST(Counter, MaxValueIsAccepted)
{
    Vn vn = makeVn(VnTag::Feature, kVnValueMax);
    EXPECT_EQ(vnValue(vn), kVnValueMax);
}

// -- VnState -----------------------------------------------------------------------

TEST(VnState, CountersStartAtZero)
{
    VnState state;
    EXPECT_EQ(state.counter("Iter"), 0u);
    EXPECT_EQ(state.bumpCounter("Iter"), 1u);
    EXPECT_EQ(state.counter("Iter"), 1u);
}

TEST(VnState, Tables)
{
    VnState state;
    state.makeTable("VN_F", 4, 9);
    EXPECT_EQ(state.table("VN_F", 3), 9u);
    state.setTable("VN_F", 2, 100);
    EXPECT_EQ(state.bumpTable("VN_F", 2), 101u);
}

TEST(VnState, OnChipBytesAccounting)
{
    VnState state;
    state.setCounter("a", 1);
    state.makeTable("t", 127);
    // 1 scalar + 127 entries, 8 bytes each: ~1 KB for a 127-layer DNN,
    // the figure the paper quotes.
    EXPECT_EQ(state.onChipBytes(), 128u * 8);
}

TEST(VnState, ClearResets)
{
    VnState state;
    state.setCounter("a", 5);
    state.clear();
    EXPECT_EQ(state.counter("a"), 0u);
    EXPECT_EQ(state.onChipBytes(), 0u); // const reads allocate nothing
}

// -- InvariantChecker ---------------------------------------------------------------

LogicalAccess
wr(Addr addr, u64 bytes, Vn value)
{
    return {addr, bytes, makeVn(DataClass::Generic, value),
            AccessType::Write, DataClass::Generic, 0};
}

LogicalAccess
rd(Addr addr, u64 bytes, Vn value)
{
    return {addr, bytes, makeVn(DataClass::Generic, value),
            AccessType::Read, DataClass::Generic, 0};
}

TEST(InvariantChecker, AcceptsMonotonicWrites)
{
    InvariantChecker checker;
    checker.observe(wr(0, 128, 1));
    checker.observe(wr(0, 128, 2));
    checker.observe(rd(0, 128, 2));
    EXPECT_TRUE(checker.report().ok);
}

TEST(InvariantChecker, RejectsVnReuse)
{
    InvariantChecker checker;
    checker.observe(wr(0, 64, 1));
    checker.observe(wr(0, 64, 1));
    EXPECT_FALSE(checker.report().ok);
}

TEST(InvariantChecker, RejectsVnRegression)
{
    InvariantChecker checker;
    checker.observe(wr(0, 64, 5));
    checker.observe(wr(0, 64, 3));
    EXPECT_FALSE(checker.report().ok);
}

TEST(InvariantChecker, RejectsStaleRead)
{
    InvariantChecker checker;
    checker.observe(wr(0, 64, 1));
    checker.observe(wr(0, 64, 2));
    checker.observe(rd(0, 64, 1)); // replay: reads the stale version
    EXPECT_FALSE(checker.report().ok);
}

TEST(InvariantChecker, DifferentTagsAreIndependentCounters)
{
    InvariantChecker checker;
    checker.observe({0, 64, makeVn(DataClass::Feature, 1),
                     AccessType::Write, DataClass::Feature, 0});
    checker.observe({0, 64, makeVn(DataClass::Weight, 1), AccessType::Write,
                     DataClass::Weight, 0});
    EXPECT_TRUE(checker.report().ok);
}

TEST(InvariantChecker, PartialOverlapChecked)
{
    InvariantChecker checker;
    checker.observe(wr(0, 256, 1));
    // Overlapping write with the same VN touches blocks 0..3 again.
    checker.observe(wr(128, 256, 1));
    EXPECT_FALSE(checker.report().ok);
}

TEST(InvariantChecker, UnwrittenReadsConfigurable)
{
    InvariantChecker strict;
    strict.allowUnwrittenReads(false);
    strict.observe(rd(0, 64, 1));
    EXPECT_FALSE(strict.report().ok);

    InvariantChecker lenient;
    lenient.observe(rd(0, 64, 1));
    EXPECT_TRUE(lenient.report().ok);
}

TEST(InvariantChecker, ExhaustiveModeCatchesNonMonotonicReuse)
{
    // Exhaustive mode also remembers old VNs; monotonic mode already
    // rejects this, so drive it through distinct tags... the simplest
    // demonstration is a repeat after an intervening higher VN.
    InvariantChecker checker(64, true);
    checker.observe(wr(0, 64, 1));
    checker.observe(wr(0, 64, 2));
    checker.observe(wr(0, 64, 2));
    auto report = checker.report();
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.violations.empty());
}

// -- MatMulKernel (paper Fig. 4) ------------------------------------------------------

TEST(MatMulKernel, Fig4VnSequence)
{
    // 2 K-rounds, 2 N-tiles: the exact example of Fig. 4.
    MatMulParams params;
    params.m = 64;
    params.n = 128;
    params.k = 128;
    params.nTiles = 2;
    params.kTiles = 2;
    params.initialVn = 10; // "n" in the figure
    MatMulKernel kernel(params);
    Trace trace = kernel.generate();

    // Phase 0 is the operand load; then 4 compute phases.
    ASSERT_EQ(trace.size(), 5u);

    // Rounds 1-2 (phases 1,2): C tiles written with VN n+1, no C read.
    for (int p : {1, 2}) {
        const auto &acc = trace[static_cast<std::size_t>(p)].accesses;
        ASSERT_EQ(acc.size(), 3u); // A tile, B tile, C write
        EXPECT_EQ(acc[2].type, AccessType::Write);
        EXPECT_EQ(vnValue(acc[2].vn), 11u);
    }
    // Rounds 3-4 (phases 3,4): read C with n+1, write with n+2.
    for (int p : {3, 4}) {
        const auto &acc = trace[static_cast<std::size_t>(p)].accesses;
        ASSERT_EQ(acc.size(), 4u);
        EXPECT_EQ(acc[2].type, AccessType::Read);
        EXPECT_EQ(vnValue(acc[2].vn), 11u);
        EXPECT_EQ(acc[3].type, AccessType::Write);
        EXPECT_EQ(vnValue(acc[3].vn), 12u);
    }
    EXPECT_EQ(vnValue(kernel.finalOutputVn()), 12u);
}

TEST(MatMulKernel, InvariantsHoldForLargerTilings)
{
    MatMulParams params;
    params.m = 256;
    params.n = 256;
    params.k = 512;
    params.mTiles = 2;
    params.nTiles = 4;
    params.kTiles = 8;
    MatMulKernel kernel(params);
    InvariantChecker checker;
    checker.allowUnwrittenReads(false);
    checker.observeTrace(kernel.generate());
    auto report = checker.report();
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
    EXPECT_GT(report.readsChecked, 0u);
}

TEST(MatMulKernel, ReadsMatchWritesAcrossReuse)
{
    // Two consecutive kernels on the same addresses: the second starts
    // from the first's final VN, modeling buffer reuse.
    MatMulParams params;
    params.kTiles = 2;
    InvariantChecker checker;
    MatMulKernel first(params);
    checker.observeTrace(first.generate());
    params.initialVn = vnValue(first.finalOutputVn());
    MatMulKernel second(params);
    checker.observeTrace(second.generate());
    EXPECT_TRUE(checker.report().ok);
}

} // namespace
} // namespace mgx::core
