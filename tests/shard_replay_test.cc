/**
 * @file
 * Channel-sharded replay tests: CaptureBuffer lane routing and the
 * crypto-group merge rule, sharded-vs-serial bitwise equivalence for
 * one cell per domain x NP/MGX/BP, determinism across pool widths
 * 1/2/4/8 (including per-channel load equality *across* widths),
 * clean shutdown when the phase source throws mid-stream (bare and
 * composed with the pipeline ring), the Experiment-level
 * threads/replayThreads composition, and the concurrent trace-cache
 * evictor hammer with sharding on. This suite runs under
 * ThreadSanitizer in CI (-DMGX_SANITIZE=thread).
 *
 * Every Experiment here sets threads() explicitly: the thread budget
 * defaults to hardware_concurrency, and on a single-core runner that
 * clamps the shard width back to 1 (serial) — which would make these
 * equivalence tests vacuously true.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "sim/shard.h"
#include "sim/workload_registry.h"

namespace mgx::sim {
namespace {

namespace fs = std::filesystem;

using protection::ProtectionConfig;
using protection::ProtectionEngine;
using protection::Scheme;

/** One small, fast workload per domain (same set as pipeline tests). */
const char *const kDomainWorkloads[] = {
    "core/matmul?m=256&n=256&k=256",
    "dnn/MobileNet?task=training",
    "graph/google-plus/pagerank?vector=random",
    "genome/chr1PacBio?reads=8",
    "video/h264?frames=6",
};

RunResult
runSerial(const std::string &workload, Scheme scheme)
{
    const Platform platform = defaultPlatform(workload);
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    auto kernel = makeKernel(workload, platform);
    auto source = kernel->stream();
    return model.run(*source);
}

RunResult
runSharded(const std::string &workload, Scheme scheme, u32 width)
{
    const Platform platform = defaultPlatform(workload);
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    auto kernel = makeKernel(workload, platform);
    auto source = kernel->stream();
    ShardPool shard(dram, width);
    return model.run(*source, shard);
}

/**
 * Every deterministic field must match — including the metaCache
 * counters and the content-derived footprint fields (traceBytes,
 * peakPhaseBytes). Only the pipeline/shard diagnostics may differ.
 */
void
expectBitwiseEqual(const RunResult &a, const RunResult &b,
                   const std::string &label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.memoryCycles, b.memoryCycles) << label;
    EXPECT_EQ(a.traffic.dataBytes, b.traffic.dataBytes) << label;
    EXPECT_EQ(a.traffic.expandBytes, b.traffic.expandBytes) << label;
    EXPECT_EQ(a.traffic.macBytes, b.traffic.macBytes) << label;
    EXPECT_EQ(a.traffic.vnBytes, b.traffic.vnBytes) << label;
    EXPECT_EQ(a.traffic.treeBytes, b.traffic.treeBytes) << label;
    EXPECT_EQ(a.dramAccesses, b.dramAccesses) << label;
    EXPECT_EQ(a.logicalAccesses, b.logicalAccesses) << label;
    EXPECT_EQ(a.metaCacheHits, b.metaCacheHits) << label;
    EXPECT_EQ(a.metaCacheMisses, b.metaCacheMisses) << label;
    EXPECT_EQ(a.metaCacheWritebacks, b.metaCacheWritebacks) << label;
    EXPECT_EQ(a.traceBytes, b.traceBytes) << label;
    EXPECT_EQ(a.peakPhaseBytes, b.peakPhaseBytes) << label;
    EXPECT_EQ(a.seconds, b.seconds) << label;
}

// ---------------------------------------------------------------------
// CaptureBuffer units
// ---------------------------------------------------------------------

TEST(CaptureBufferUnit, RoutesByChannelAndPreservesLaneOrder)
{
    dram::CaptureBuffer buf;
    buf.reset(4, 100);
    EXPECT_EQ(buf.channels(), 4u);
    EXPECT_EQ(buf.arrival(), 100u);
    EXPECT_EQ(buf.totalRequests(), 0u);

    dram::Coord c0{0, 0, 0, 7, 1};
    dram::Coord c2a{2, 0, 1, 9, 3};
    dram::Coord c2b{2, 0, 1, 9, 4};
    buf.emit(c0, true);
    buf.setCryptoTag(true);
    buf.emit(c2a, false);
    buf.emit(c2b, false);
    buf.setCryptoTag(false);

    EXPECT_EQ(buf.totalRequests(), 3u);
    ASSERT_EQ(buf.lane(0).size(), 1u);
    EXPECT_TRUE(buf.lane(0)[0].isWrite);
    EXPECT_FALSE(buf.lane(0)[0].crypto);
    EXPECT_EQ(buf.lane(1).size(), 0u);
    ASSERT_EQ(buf.lane(2).size(), 2u); // serial order within the lane
    EXPECT_EQ(buf.lane(2)[0].coord.column, 3u);
    EXPECT_EQ(buf.lane(2)[1].coord.column, 4u);
    EXPECT_TRUE(buf.lane(2)[0].crypto);
    EXPECT_TRUE(buf.lane(2)[1].crypto);
    EXPECT_EQ(buf.lane(3).size(), 0u);
}

TEST(CaptureBufferUnit, ResetClearsLanesAndCryptoTag)
{
    dram::CaptureBuffer buf;
    buf.reset(2, 5);
    buf.setCryptoTag(true);
    buf.emit(dram::Coord{1, 0, 0, 0, 0}, false);
    buf.reset(2, 9);
    EXPECT_EQ(buf.totalRequests(), 0u);
    EXPECT_EQ(buf.lane(1).size(), 0u);
    EXPECT_EQ(buf.arrival(), 9u);
    buf.emit(dram::Coord{0, 0, 0, 0, 0}, false);
    EXPECT_FALSE(buf.lane(0)[0].crypto); // tag does not survive reset
}

TEST(CaptureBufferUnit, DramSystemCaptureMatchesInlineDecode)
{
    // The same access sequence, captured vs timed inline, must decode
    // to identical per-channel request streams and bump accessCount
    // identically.
    const dram::Ddr4Config cfg = dram::ddr4_2400(4);
    dram::DramSystem inline_sys(cfg);
    dram::DramSystem captured_sys(cfg);

    const Cycles issue = 50;
    inline_sys.accessRange(0x10000, 512, false, issue);
    inline_sys.accessRange(0x42000, 256, true, issue);

    dram::CaptureBuffer buf;
    buf.reset(captured_sys.channelCount(), issue);
    captured_sys.beginCapture(&buf);
    EXPECT_TRUE(captured_sys.capturing());
    captured_sys.accessRange(0x10000, 512, false, issue);
    captured_sys.accessRange(0x42000, 256, true, issue);
    captured_sys.endCapture();
    EXPECT_FALSE(captured_sys.capturing());

    EXPECT_EQ(captured_sys.accessCount(), inline_sys.accessCount());
    EXPECT_EQ(buf.totalRequests(), inline_sys.accessCount());
    // (512 + 256) / 64-byte blocks, spread across the 4 channels.
    EXPECT_EQ(buf.totalRequests(), 12u);
    u64 captured = 0;
    for (u32 c = 0; c < buf.channels(); ++c)
        captured += buf.lane(c).size();
    EXPECT_EQ(captured, buf.totalRequests());
}

// ---------------------------------------------------------------------
// ShardPool merge units
// ---------------------------------------------------------------------

TEST(ShardPoolUnit, WidthClampsToChannelCount)
{
    dram::DramSystem four(dram::ddr4_2400(4));
    dram::DramSystem one(dram::ddr4_2400(1));
    EXPECT_EQ(ShardPool(four, 8).width(), 4u);
    EXPECT_EQ(ShardPool(four, 3).width(), 3u);
    EXPECT_EQ(ShardPool(four, 0).width(), 1u);
    EXPECT_EQ(ShardPool(one, 4).width(), 1u);
}

TEST(ShardPoolUnit, EmptyStepReturnsIssueExactly)
{
    dram::DramSystem dram(dram::ddr4_2400(4));
    ShardPool pool(dram, 4);
    dram::CaptureBuffer buf;
    buf.reset(dram.channelCount(), 123);
    EXPECT_EQ(pool.replay(buf, 123, 40), 123u);
    for (const ShardChannelLoad &load : pool.channelLoads()) {
        EXPECT_EQ(load.requests, 0u);
        EXPECT_EQ(load.busyCycles, 0u);
    }
}

TEST(ShardPoolUnit, MergeAppliesCryptoLatencyToGroupMax)
{
    // Replay the same two-request step inline and through the pool:
    // the merged ready cycle must equal max(issue, plain completion,
    // crypto completion + latency) with completions reproduced bit
    // for bit from the serial channel walk.
    const dram::Ddr4Config cfg = dram::ddr4_2400(4);
    const Cycles issue = 200;
    const Cycles crypto_latency = 40;
    const dram::Coord plain{0, 0, 2, 11, 5};
    const dram::Coord crypto{1, 0, 3, 13, 7};

    dram::DramSystem serial(cfg);
    const Cycles plain_done =
        serial.accessCoord(plain, true, issue);
    const Cycles crypto_done =
        serial.accessCoord(crypto, false, issue);

    dram::DramSystem sharded(cfg);
    ShardPool pool(sharded, 4);
    dram::CaptureBuffer buf;
    buf.reset(sharded.channelCount(), issue);
    buf.emit(plain, true);
    buf.setCryptoTag(true);
    buf.emit(crypto, false);

    const Cycles ready = pool.replay(buf, issue, crypto_latency);
    EXPECT_EQ(ready, std::max({issue, plain_done,
                               crypto_done + crypto_latency}));

    const auto &loads = pool.channelLoads();
    ASSERT_EQ(loads.size(), 4u);
    EXPECT_EQ(loads[0].requests, 1u);
    EXPECT_EQ(loads[0].busyCycles, plain_done - issue);
    EXPECT_EQ(loads[1].requests, 1u);
    EXPECT_EQ(loads[1].busyCycles, crypto_done - issue);
    EXPECT_EQ(loads[2].requests, 0u);
    EXPECT_EQ(loads[3].requests, 0u);
}

TEST(ShardPoolUnit, ChannelLoadsIdenticalAcrossWidths)
{
    // One captured step replayed at widths 1, 2 and 4 on fresh,
    // identical systems: merged ready and per-channel loads must not
    // depend on the pool width (static lane partition + in-order
    // lanes + order-insensitive merge).
    const dram::Ddr4Config cfg = dram::ddr4_2400(4);
    const Cycles issue = 75;

    auto capture = [&](dram::DramSystem &sys, dram::CaptureBuffer &buf) {
        buf.reset(sys.channelCount(), issue);
        sys.beginCapture(&buf);
        sys.accessRange(0x8000, 1024, false, issue);
        sys.accessRange(0x20000, 512, true, issue);
        sys.endCapture();
    };

    std::vector<Cycles> ready;
    std::vector<std::vector<ShardChannelLoad>> loads;
    for (u32 width : {1u, 2u, 4u}) {
        dram::DramSystem sys(cfg);
        dram::CaptureBuffer buf;
        capture(sys, buf);
        ShardPool pool(sys, width);
        EXPECT_EQ(pool.width(), width);
        ready.push_back(pool.replay(buf, issue, 0));
        loads.push_back(pool.channelLoads());
    }
    EXPECT_EQ(ready[0], ready[1]);
    EXPECT_EQ(ready[0], ready[2]);
    for (std::size_t w = 1; w < loads.size(); ++w) {
        ASSERT_EQ(loads[w].size(), loads[0].size());
        for (std::size_t c = 0; c < loads[0].size(); ++c) {
            EXPECT_EQ(loads[w][c].requests, loads[0][c].requests);
            EXPECT_EQ(loads[w][c].busyCycles, loads[0][c].busyCycles);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded replay equivalence
// ---------------------------------------------------------------------

TEST(ShardReplay, MatchesSerialStreamingAllDomains)
{
    // BP exercises the metadata cache, MGX the VN expansion path;
    // both must be bitwise-identical between the serial drain and
    // 4-wide channel-sharded replay in every domain.
    for (const char *workload : kDomainWorkloads) {
        for (Scheme scheme : {Scheme::NP, Scheme::MGX, Scheme::BP}) {
            const std::string label =
                std::string(workload) + "/" +
                protection::schemeName(scheme);
            const RunResult serial = runSerial(workload, scheme);
            const RunResult sharded = runSharded(workload, scheme, 4);
            expectBitwiseEqual(serial, sharded, label);
            // The serial run never saw a pool; the sharded one did,
            // clamped to the platform's channel count.
            EXPECT_EQ(serial.shardReplayThreads, 0u) << label;
            const u32 channels =
                defaultPlatform(workload).dram.channels;
            EXPECT_EQ(sharded.shardReplayThreads,
                      std::min(4u, channels))
                << label;
            // Every DRAM access went through exactly one lane.
            u64 lane_requests = 0;
            for (const ShardChannelLoad &load : sharded.shardChannels)
                lane_requests += load.requests;
            EXPECT_EQ(lane_requests, sharded.dramAccesses) << label;
        }
    }
}

TEST(ShardReplay, DeterministicAcrossWidths1248)
{
    const std::string w = "dnn/MobileNet?task=training";
    for (Scheme scheme : {Scheme::MGX, Scheme::BP}) {
        const std::string label =
            std::string(w) + "/" + protection::schemeName(scheme);
        std::vector<RunResult> runs;
        for (u32 width : {1u, 2u, 4u, 8u})
            runs.push_back(runSharded(w, scheme, width));
        for (std::size_t i = 1; i < runs.size(); ++i) {
            expectBitwiseEqual(runs[0], runs[i],
                               label + " width index " +
                                   std::to_string(i));
            // Per-channel loads are identical even across widths;
            // only mergeWaits (scheduling) and the width itself vary.
            ASSERT_EQ(runs[i].shardChannels.size(),
                      runs[0].shardChannels.size());
            for (std::size_t c = 0; c < runs[0].shardChannels.size();
                 ++c) {
                EXPECT_EQ(runs[i].shardChannels[c].requests,
                          runs[0].shardChannels[c].requests)
                    << label;
                EXPECT_EQ(runs[i].shardChannels[c].busyCycles,
                          runs[0].shardChannels[c].busyCycles)
                    << label;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shutdown mid-phase
// ---------------------------------------------------------------------

/** Emits a few phases, then dies mid-stream. */
class ThrowingSource final : public core::PhaseSource
{
  public:
    bool
    nextChunk(core::PhaseSink &sink) override
    {
        if (emitted_ == 5)
            throw std::runtime_error("kernel stream failed");
        core::Phase p;
        p.name = "phase" + std::to_string(emitted_);
        p.computeCycles = emitted_;
        p.accesses.push_back({emitted_ * 4096, 256, emitted_,
                              AccessType::Write, DataClass::Generic,
                              0});
        ++emitted_;
        sink.consume(scratch_ = std::move(p));
        return true;
    }

  private:
    u64 emitted_ = 0;
    core::Phase scratch_;
};

TEST(ShardReplay, SourceThrowMidStreamShutsDownCleanly)
{
    // The source dies after the pool has replayed several phases:
    // the exception must surface on the caller with the workers
    // parked, and the pool destructor must join without deadlock.
    const Platform platform = cloudPlatform();
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = Scheme::MGX;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    ThrowingSource source;
    ShardPool shard(dram, 4);
    EXPECT_THROW(model.run(source, shard), std::runtime_error);
}

TEST(ShardReplay, SourceThrowComposedWithPipelineShutsDownCleanly)
{
    // Same, composed with the SPSC ring: the producer thread fails,
    // the failure drains through the ring to the sharded consumer,
    // and both the ring join and the pool join must complete.
    const Platform platform = cloudPlatform();
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = Scheme::BP;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    ThrowingSource source;
    ShardPool shard(dram, 4);
    PipelineOptions options;
    options.ringCapacity = 2;
    options.shard = &shard;
    EXPECT_THROW(runPipelined(model, source, options),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Experiment composition
// ---------------------------------------------------------------------

TEST(ShardReplay, ExperimentShardedGridMatchesSerial)
{
    const std::vector<std::string> ws = {
        "core/matmul?m=128&n=128&k=128",
        "graph/google-plus/pagerank?vector=random"};
    auto grid = [&](u32 threads, u32 replay_threads, bool pipeline) {
        return Experiment()
            .workloads(ws)
            .schemes({Scheme::NP, Scheme::MGX, Scheme::BP})
            .threads(threads)
            .replayThreads(replay_threads)
            .pipelined(pipeline)
            .run();
    };
    const ResultSet serial = grid(1, 1, false);
    const ResultSet sharded = grid(5, 4, false);
    const ResultSet both = grid(5, 4, true);
    ASSERT_EQ(serial.records().size(), sharded.records().size());
    ASSERT_EQ(serial.records().size(), both.records().size());
    for (std::size_t i = 0; i < serial.records().size(); ++i) {
        const std::string &label = serial.records()[i].key.workload;
        expectBitwiseEqual(serial.records()[i].result,
                           sharded.records()[i].result,
                           label + " sharded");
        expectBitwiseEqual(serial.records()[i].result,
                           both.records()[i].result,
                           label + " sharded+pipelined");
        EXPECT_GE(sharded.records()[i].result.shardReplayThreads, 2u);
        EXPECT_GE(both.records()[i].result.shardReplayThreads, 2u);
        EXPECT_GE(both.records()[i].result.pipelineMaxOccupancy, 1u);
    }
}

TEST(ShardReplay, SingleThreadBudgetClampsShardingOff)
{
    // threads(1) cannot afford a second replay lane: the width clamps
    // to 1 (serial replay, no pool) rather than oversubscribing —
    // the same policy pipelined() applies at budget 1.
    const ResultSet rs = Experiment()
                             .workload("core/matmul?m=128&n=128&k=128")
                             .schemes({Scheme::BP})
                             .threads(1)
                             .replayThreads(8)
                             .run();
    ASSERT_EQ(rs.records().size(), 1u);
    EXPECT_EQ(rs.records()[0].result.shardReplayThreads, 0u);
}

// ---------------------------------------------------------------------
// Trace-cache eviction hammer, sharded
// ---------------------------------------------------------------------

TEST(ShardEvictionRace, ConcurrentEvictorStaysBitwiseIdentical)
{
    // The pipeline suite's evictor hammer with channel sharding on:
    // whether a cell replays the cached file or falls back to the
    // kernel, and whether the ring is in the loop, the sharded result
    // must equal the uncached serial baseline every iteration.
    const fs::path dir =
        fs::temp_directory_path() / "mgx_shard_evict_race_test";
    fs::remove_all(dir);

    const std::string w = "core/matmul?m=128&n=128&k=128";
    const RunResult baseline = runSerial(w, Scheme::BP);

    std::atomic<bool> stop{false};
    std::thread evictor([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            enforceTraceCacheLimit(dir.string(), 0);
            std::this_thread::yield();
        }
    });
    for (int i = 0; i < 10; ++i) {
        const ResultSet rs = Experiment()
                                 .workload(w)
                                 .schemes({Scheme::BP})
                                 .threads(4)
                                 .replayThreads(2)
                                 .pipelined(i % 2 == 1)
                                 .traceCacheDir(dir.string())
                                 .run();
        ASSERT_EQ(rs.records().size(), 1u);
        expectBitwiseEqual(baseline, rs.records()[0].result,
                           "race iteration " + std::to_string(i));
        EXPECT_GE(rs.records()[0].result.shardReplayThreads, 2u);
    }
    stop.store(true, std::memory_order_relaxed);
    evictor.join();
    fs::remove_all(dir);
}

} // namespace
} // namespace mgx::sim
