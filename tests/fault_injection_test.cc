/**
 * @file
 * Fault-injection tests: the failpoint registry's arming grammar and
 * counters, the checksummed trace envelope (CRC32 vector, round trip,
 * truncation, bit flips, legacy streams), Experiment's graceful
 * degradation under every trace_io fault (quarantine + regenerate,
 * ENOSPC publishing nothing, torn renames swept as debris, EINTR
 * storms on the cache lock), the serve layer's deadline and
 * stuck-client recovery, and a single self-contained sweep proving
 * every registered failpoint in the binary actually fires.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/checksum.h"
#include "common/failpoint.h"
#include "fleet/backend.h"
#include "fleet/proxy.h"
#include "fleet/supervisor.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/experiment.h"
#include "sim/trace_io.h"
#include "sim/workload_registry.h"

namespace mgx {
namespace {

namespace fs = std::filesystem;

/** Small and fast, but real: one matmul cell, NP only. */
constexpr const char *kWorkload = "core/matmul?m=256&n=256&k=256";

/** Fresh unique directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const char *tag)
    {
        path = fs::temp_directory_path() /
               ("mgx-fault-" + std::string(tag) + "-" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
    fs::path path;
};

/** Every guard in this file restores a clean registry on both ends. */
struct FailpointGuard
{
    FailpointGuard() { failpoint::disarmAll(); }
    ~FailpointGuard() { failpoint::disarmAll(); }
};

/**
 * One-cell grid. Serial by default (cache fills in phase 1, before
 * the replay); @p pipelined switches to the deferred tee path, where
 * the cell's producer streams into the cache file while the replay
 * consumes the same phases — each mode exercises different fault
 * boundaries.
 */
sim::ResultSet
runGrid(const std::string &cache_dir, bool pipelined = false)
{
    sim::Experiment e;
    e.workload(kWorkload).schemes({protection::Scheme::NP});
    if (pipelined)
        e.threads(2).pipelined(true);
    else
        e.threads(1).pipelined(false);
    if (!cache_dir.empty())
        e.traceCacheDir(cache_dir);
    return e.run();
}

/** Model outputs must survive any cache fault bit for bit; only the
 *  trace-footprint fields may depend on how the replay was fed. */
void
expectSameModelOutputs(const sim::RunResult &a, const sim::RunResult &b,
                       const char *label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.memoryCycles, b.memoryCycles) << label;
    EXPECT_EQ(a.traffic.dataBytes, b.traffic.dataBytes) << label;
    EXPECT_EQ(a.traffic.expandBytes, b.traffic.expandBytes) << label;
    EXPECT_EQ(a.traffic.macBytes, b.traffic.macBytes) << label;
    EXPECT_EQ(a.traffic.vnBytes, b.traffic.vnBytes) << label;
    EXPECT_EQ(a.traffic.treeBytes, b.traffic.treeBytes) << label;
    EXPECT_EQ(a.dramAccesses, b.dramAccesses) << label;
    EXPECT_EQ(a.logicalAccesses, b.logicalAccesses) << label;
    EXPECT_EQ(a.metaCacheHits, b.metaCacheHits) << label;
    EXPECT_EQ(a.metaCacheMisses, b.metaCacheMisses) << label;
    EXPECT_EQ(a.seconds, b.seconds) << label;
}

std::vector<fs::path>
filesWithSuffix(const fs::path &dir, const std::string &suffix)
{
    std::vector<fs::path> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            out.push_back(entry.path());
    }
    return out;
}

std::vector<fs::path>
filesContaining(const fs::path &dir, const std::string &needle)
{
    std::vector<fs::path> out;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().find(needle) !=
            std::string::npos)
            out.push_back(entry.path());
    return out;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// Failpoint registry
// ---------------------------------------------------------------------

TEST(Failpoint, SpecGrammarAndCounters)
{
    FailpointGuard guard;
    auto &p = failpoint::Point::get("test.grammar");

    // off (default): evaluated, never hits.
    EXPECT_FALSE(p.fire());
    EXPECT_EQ(p.spec(), "off");

    ASSERT_TRUE(p.arm("once"));
    EXPECT_TRUE(p.fire());
    EXPECT_FALSE(p.fire());

    ASSERT_TRUE(p.arm("times:3"));
    EXPECT_TRUE(p.fire());
    EXPECT_TRUE(p.fire());
    EXPECT_TRUE(p.fire());
    EXPECT_FALSE(p.fire());

    failpoint::resetCounters();
    ASSERT_TRUE(p.arm("every:2"));
    EXPECT_FALSE(p.fire()); // eval 1
    EXPECT_TRUE(p.fire());  // eval 2
    EXPECT_FALSE(p.fire()); // eval 3
    EXPECT_TRUE(p.fire());  // eval 4
    EXPECT_EQ(p.evaluations(), 4u);
    EXPECT_EQ(p.hits(), 2u);

    ASSERT_TRUE(p.arm("always"));
    EXPECT_TRUE(p.fire());

    // prob:0 never fires, prob:1 always does; a fixed seed is
    // deterministic across arms.
    ASSERT_TRUE(p.arm("prob:0"));
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(p.fire());
    ASSERT_TRUE(p.arm("prob:1"));
    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(p.fire());
    ASSERT_TRUE(p.arm("prob:0.5:12345"));
    std::vector<bool> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(p.fire());
    ASSERT_TRUE(p.arm("prob:0.5:12345"));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(p.fire(), first[static_cast<std::size_t>(i)]) << i;

    p.disarm();
    EXPECT_FALSE(p.fire());
    EXPECT_EQ(p.spec(), "off");

    // Malformed specs are rejected and leave the point as-is.
    EXPECT_FALSE(p.arm("nonsense"));
    EXPECT_FALSE(p.arm("times:0"));
    EXPECT_FALSE(p.arm("every:0"));
    EXPECT_FALSE(p.arm("prob:2"));
    EXPECT_FALSE(p.arm("prob:0.5:notanumber"));
    EXPECT_EQ(p.spec(), "off");
}

TEST(Failpoint, SpecListArmsAndHoldsPendingNames)
{
    FailpointGuard guard;
    // The second name has never registered: the spec is held and
    // applied the moment the point appears.
    std::string error;
    ASSERT_TRUE(failpoint::armSpecList(
        "test.list.known=once,test.list.pending=times:2", &error))
        << error;
    auto &known = failpoint::Point::get("test.list.known");
    EXPECT_EQ(known.spec(), "once");

    auto &late = failpoint::Point::get("test.list.pending");
    EXPECT_EQ(late.spec(), "times:2");
    EXPECT_TRUE(late.fire());
    EXPECT_TRUE(late.fire());
    EXPECT_FALSE(late.fire());

    EXPECT_FALSE(failpoint::armSpecList("garbage-no-equals", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        failpoint::armSpecList("test.list.known=bogus", &error));

    // all() reports both points, sorted, with live counters.
    bool saw_known = false, saw_pending = false;
    for (const auto &info : failpoint::all()) {
        if (info.name == "test.list.known")
            saw_known = true;
        if (info.name == "test.list.pending") {
            saw_pending = true;
            EXPECT_EQ(info.evaluations, 3u);
            EXPECT_EQ(info.hits, 2u);
        }
    }
    EXPECT_TRUE(saw_known);
    EXPECT_TRUE(saw_pending);
}

// ---------------------------------------------------------------------
// CRC32 and the trace envelope
// ---------------------------------------------------------------------

TEST(Checksum, Crc32MatchesKnownVector)
{
    // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
    const char *vec = "123456789";
    EXPECT_EQ(crc32Update(0, vec, std::strlen(vec)), 0xCBF43926u);
    // Incremental updates compose.
    u32 crc = crc32Update(0, "1234", 4);
    crc = crc32Update(crc, "56789", 5);
    EXPECT_EQ(crc, 0xCBF43926u);
    EXPECT_EQ(crc32Update(0, "", 0), 0u);
}

TEST(TraceEnvelope, WriteSinkRoundTripsWithVerifiedChecksum)
{
    TempDir dir("roundtrip");
    const std::string file = (dir.path / "t.trace").string();

    auto kernel = sim::makeKernel(kWorkload);
    {
        sim::TraceFileWriteSink sink(file);
        kernel->stream()->drainTo(sink);
        sink.finish();
    }

    // Envelope shape: version header first, CRC footer last.
    const std::string raw = slurp(file);
    EXPECT_EQ(raw.rfind("M mgx-trace 2\n", 0), 0u);
    const std::size_t last_line = raw.rfind("\nC ");
    ASSERT_NE(last_line, std::string::npos);

    // Strict read verifies and strips the envelope; the payload must
    // equal the materialized trace byte for byte.
    const auto strict = sim::readTraceFileIfReadable(
        file, /*require_checksum=*/true);
    ASSERT_TRUE(strict.has_value());
    EXPECT_EQ(sim::traceToString(*strict),
              sim::traceToString(sim::makeKernel(kWorkload)->generate()));
}

TEST(TraceEnvelope, TruncationIsDetected)
{
    TempDir dir("truncate");
    const std::string file = (dir.path / "t.trace").string();
    {
        sim::TraceFileWriteSink sink(file);
        sim::makeKernel(kWorkload)->stream()->drainTo(sink);
        sink.finish();
    }
    std::string raw = slurp(file);
    // Drop the footer line — the classic crash-mid-write shape.
    raw.erase(raw.rfind("C "));
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << raw;
    }
    try {
        sim::readTraceFileIfReadable(file, true);
        FAIL() << "truncated trace verified";
    } catch (const sim::TraceIoError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceEnvelope, BitFlipIsDetectedAndQuarantined)
{
    TempDir dir("bitflip");
    const std::string file = (dir.path / "t.trace").string();
    {
        sim::TraceFileWriteSink sink(file);
        sim::makeKernel(kWorkload)->stream()->drainTo(sink);
        sink.finish();
    }
    std::string raw = slurp(file);
    // Flip one hex digit in the middle of the payload: every line
    // still parses, only the CRC can notice.
    const std::size_t pos = raw.find('7', raw.size() / 2);
    ASSERT_NE(pos, std::string::npos);
    raw[pos] = '8';
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << raw;
    }
    EXPECT_THROW(sim::readTraceFileIfReadable(file, true),
                 sim::TraceIoError);

    EXPECT_TRUE(sim::quarantineTraceFile(file));
    EXPECT_FALSE(fs::exists(file));
    EXPECT_TRUE(fs::exists(file + ".bad"));
}

TEST(TraceEnvelope, LegacyHeaderlessStreamsStillParse)
{
    const core::Trace trace =
        sim::makeKernel(kWorkload)->generate();
    const std::string payload = sim::traceToString(trace);
    // Envelope-free text (writeTrace / dumps) parses in lenient mode…
    const core::Trace again = sim::traceFromString(payload);
    EXPECT_EQ(sim::traceToString(again), payload);
    // …but strict mode refuses anything without a verified envelope.
    std::istringstream ss(payload);
    EXPECT_THROW(sim::readTrace(ss, /*require_checksum=*/true),
                 sim::TraceIoError);
}

// ---------------------------------------------------------------------
// Experiment degradation under injected faults
// ---------------------------------------------------------------------

TEST(ExperimentFault, CorruptCacheFileQuarantinedAndRegenerated)
{
    FailpointGuard guard;
    TempDir dir("corrupt");
    const sim::ResultSet baseline = runGrid("");

    // Cold pipelined run publishes the cache file through the tee.
    runGrid(dir.str(), /*pipelined=*/true);
    auto traces = filesWithSuffix(dir.path, ".trace");
    ASSERT_EQ(traces.size(), 1u);
    const std::string pristine = slurp(traces[0]);

    // Corrupt one payload digit on disk.
    std::string raw = pristine;
    const std::size_t pos = raw.find('7', raw.size() / 2);
    ASSERT_NE(pos, std::string::npos);
    raw[pos] = '8';
    {
        std::ofstream out(traces[0],
                          std::ios::binary | std::ios::trunc);
        out << raw;
    }

    // The warm run must detect it, quarantine, regenerate from the
    // kernel (republishing within the same run), and still produce
    // exact results.
    const sim::ResultSet rs = runGrid(dir.str(), /*pipelined=*/true);
    ASSERT_EQ(rs.records().size(), 1u);
    expectSameModelOutputs(rs.records()[0].result,
                           baseline.records()[0].result, "corrupt");
    EXPECT_EQ(rs.traceCacheQuarantined(), 1u);
    EXPECT_EQ(rs.traceCacheHits(), 0u);
    EXPECT_EQ(rs.traceCacheMisses(), 1u);
    EXPECT_FALSE(rs.cacheDegraded());
    EXPECT_EQ(filesWithSuffix(dir.path, ".trace.bad").size(), 1u);

    // The regenerated file is bitwise-identical to the pre-corruption
    // original (equal keys guarantee equal traces, and the envelope
    // is deterministic).
    traces = filesWithSuffix(dir.path, ".trace");
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(slurp(traces[0]), pristine);

    // And a later run hits it cleanly.
    const sim::ResultSet warm = runGrid(dir.str(), /*pipelined=*/true);
    EXPECT_EQ(warm.traceCacheHits(), 1u);
    EXPECT_EQ(warm.traceCacheQuarantined(), 0u);
}

TEST(ExperimentFault, EnospcPublishesNothingAndDegradesGracefully)
{
    FailpointGuard guard;
    TempDir dir("enospc");
    const sim::ResultSet baseline = runGrid("");

    ASSERT_TRUE(
        failpoint::armSpecList("trace_io.write.enospc=once"));
    const sim::ResultSet rs = runGrid(dir.str());
    ASSERT_EQ(rs.records().size(), 1u);
    expectSameModelOutputs(rs.records()[0].result,
                           baseline.records()[0].result, "enospc");
    // A failed write publishes nothing — no half-written trace, no
    // leaked temporary (consume cleans up on ENOSPC).
    EXPECT_TRUE(filesWithSuffix(dir.path, ".trace").empty());
    EXPECT_TRUE(filesContaining(dir.path, ".trace.tmp.").empty());
    EXPECT_TRUE(rs.cacheDegraded());
    EXPECT_GE(rs.traceCacheFaults(), 1u);
    EXPECT_EQ(rs.traceCacheMisses(), 0u);
}

TEST(ExperimentFault, TornRenameLeavesOnlyTmpAndSweepReclaimsIt)
{
    FailpointGuard guard;
    TempDir dir("torn");
    const sim::ResultSet baseline = runGrid("");

    ASSERT_TRUE(failpoint::armSpecList("trace_io.write.torn=once"));
    const sim::ResultSet rs = runGrid(dir.str());
    expectSameModelOutputs(rs.records()[0].result,
                           baseline.records()[0].result, "torn");
    // The crash-before-rename shape: the temporary exists, the
    // published name does not.
    EXPECT_TRUE(filesWithSuffix(dir.path, ".trace").empty());
    EXPECT_EQ(filesContaining(dir.path, ".trace.tmp.").size(), 1u);
    EXPECT_TRUE(rs.cacheDegraded());

    // Debris sweep with no grace reclaims it (the in-run sweep uses a
    // 15-minute grace so live writers are never raced).
    EXPECT_EQ(sim::sweepTraceCacheDebris(dir.str(),
                                         std::chrono::seconds(0)),
              1u);
    EXPECT_TRUE(filesContaining(dir.path, ".trace.tmp.").empty());
}

TEST(ExperimentFault, StartupSweepCountsReclaimedDebris)
{
    FailpointGuard guard;
    TempDir dir("sweep");
    // Plant aged debris: an abandoned temporary and a stale
    // quarantine file, plus a fresh temporary a live writer could own.
    const auto old_tmp = dir.path / "k.trace.tmp.999";
    const auto old_bad = dir.path / "k.trace.bad";
    const auto fresh_tmp = dir.path / "live.trace.tmp.1000";
    for (const auto &p : {old_tmp, old_bad, fresh_tmp})
        std::ofstream(p) << "debris\n";
    const auto aged =
        fs::file_time_type::clock::now() - std::chrono::hours(1);
    fs::last_write_time(old_tmp, aged);
    fs::last_write_time(old_bad, aged);

    const sim::ResultSet rs = runGrid(dir.str());
    EXPECT_EQ(rs.traceCacheSwept(), 2u);
    EXPECT_FALSE(fs::exists(old_tmp));
    EXPECT_FALSE(fs::exists(old_bad));
    EXPECT_TRUE(fs::exists(fresh_tmp)) << "swept a live writer's tmp";
}

TEST(ExperimentFault, LockEintrStormIsRetried)
{
    FailpointGuard guard;
    TempDir dir("eintr");
    const sim::ResultSet baseline = runGrid("");

    auto &eintr = failpoint::Point::get("trace_io.lock.eintr");
    failpoint::resetCounters();
    ASSERT_TRUE(failpoint::armSpecList("trace_io.lock.eintr=times:5"));
    const sim::ResultSet rs = runGrid(dir.str());
    expectSameModelOutputs(rs.records()[0].result,
                           baseline.records()[0].result, "eintr");
    // The storm was absorbed by retrying, not by giving up: the run
    // published normally.
    EXPECT_EQ(eintr.hits(), 5u);
    EXPECT_EQ(rs.traceCacheMisses(), 1u);
    EXPECT_FALSE(rs.cacheDegraded());
    EXPECT_EQ(filesWithSuffix(dir.path, ".trace").size(), 1u);
}

// ---------------------------------------------------------------------
// Serve-layer recovery: deadlines and stuck clients free the worker
// ---------------------------------------------------------------------

std::string
testSocketPath(const char *tag)
{
    return "/tmp/mgx-fault-test-" + std::to_string(::getpid()) + "-" +
           tag + ".sock";
}

template <typename Pred>
bool
eventually(Pred pred, int timeout_ms = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

serve::CellOutcome
syntheticOutcome(const serve::CellKey &cell)
{
    serve::CellOutcome out;
    out.record.key = {cell.workload, cell.platform.name, cell.scheme};
    out.record.result.totalCycles = 1000;
    return out;
}

TEST(ServeFault, ExpiredDeadlineAnswers503AndFreesTheWorker)
{
    serve::ServerOptions opts;
    opts.listen.unixPath = testSocketPath("deadline");
    opts.workers = 1;
    opts.requestDeadlineMs = 50;
    serve::Server server(opts);

    std::atomic<bool> release{false};
    std::atomic<int> runs{0};
    server.setCellRunnerForTest([&](const serve::CellKey &cell) {
        runs.fetch_add(1);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return syntheticOutcome(cell);
    });
    server.start();
    const serve::SocketAddress addr{opts.listen.unixPath, "127.0.0.1",
                                    0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, target, &resp, &error)) << error;
    EXPECT_EQ(resp.status, 503);
    EXPECT_NE(resp.body.find("deadline exceeded"), std::string::npos);

    // The worker is free again — with one worker, only a freed worker
    // can answer this — while the cell still runs in the background.
    ASSERT_TRUE(serve::httpGet(addr, "/stats", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"deadlineExceeded\": 1"),
              std::string::npos);
    EXPECT_EQ(server.cellFlights().backgroundRuns(), 1u);

    // A retry joins the background flight instead of re-running the
    // engine: still one runner invocation.
    ASSERT_TRUE(serve::httpGet(addr, target, &resp, &error)) << error;
    EXPECT_EQ(resp.status, 503);
    EXPECT_EQ(runs.load(), 1);

    release.store(true, std::memory_order_release);
    server.shutdown(); // must drain the background run, then join
    EXPECT_EQ(server.cellFlights().backgroundRuns(), 0u);
    EXPECT_EQ(server.metricsSnapshot().deadlineExceeded, 2u);
}

TEST(ServeFault, StuckClientIsTimedOutAndTheWorkerFreed)
{
    serve::ServerOptions opts;
    opts.listen.unixPath = testSocketPath("stuck");
    opts.workers = 1;
    opts.ioTimeoutMs = 150; // SO_RCVTIMEO on the accepted socket
    serve::Server server(opts);
    server.setCellRunnerForTest(syntheticOutcome);
    server.start();
    const serve::SocketAddress addr{opts.listen.unixPath, "127.0.0.1",
                                    0};

    // A client that connects and then says nothing wedges the only
    // worker until the receive timeout trips.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, opts.listen.unixPath.c_str(),
                 sizeof sa.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof sa),
              0);
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().inFlight >= 1; }));

    // Within the timeout (plus slack) the worker answers 400 to the
    // silent peer and moves on; a normal request then succeeds.
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().inFlight == 0; }, 5000));
    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, "/stats", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_GE(server.metricsSnapshot().badRequests, 1u);
    ::close(fd);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Coverage: every registered failpoint fires at least once
// ---------------------------------------------------------------------

TEST(FailpointCoverage, EveryRegisteredFailpointFires)
{
    // gtest_discover_tests runs each TEST in its own process, so this
    // must be one self-contained sweep: arm every point in turn, drive
    // the code path that evaluates it, then audit the registry.
    FailpointGuard guard;
    failpoint::resetCounters();

    const sim::ResultSet baseline = runGrid("");
    const auto degraded_run = [&](const char *specs) {
        TempDir dir(specs);
        ASSERT_TRUE(failpoint::armSpecList(specs));
        const sim::ResultSet rs = runGrid(dir.str());
        failpoint::disarmAll();
        ASSERT_EQ(rs.records().size(), 1u);
        expectSameModelOutputs(rs.records()[0].result,
                               baseline.records()[0].result, specs);
    };

    // Write-side faults: each cold run absorbs one injected failure.
    degraded_run("trace_io.write.open=once");
    degraded_run("trace_io.write.enospc=once");
    degraded_run("trace_io.write.short=once");
    degraded_run("trace_io.write.torn=once");
    degraded_run("trace_io.lock.open=once");
    degraded_run("trace_io.lock.eintr=times:2");

    // Read-side faults need a populated cache to read from.
    {
        TempDir dir("reads");
        runGrid(dir.str()); // cold, unarmed: publish the file
        ASSERT_TRUE(
            failpoint::armSpecList("trace_io.read.open=once"));
        sim::ResultSet rs = runGrid(dir.str());
        failpoint::disarmAll();
        expectSameModelOutputs(rs.records()[0].result,
                               baseline.records()[0].result,
                               "read.open");
        ASSERT_TRUE(
            failpoint::armSpecList("trace_io.read.corrupt=once"));
        rs = runGrid(dir.str());
        failpoint::disarmAll();
        expectSameModelOutputs(rs.records()[0].result,
                               baseline.records()[0].result,
                               "read.corrupt");
        EXPECT_EQ(rs.traceCacheQuarantined(), 1u);
    }

    // Serve-side faults: one dropped accept, one dead recv, one dead
    // send — the daemon survives all three and keeps answering.
    {
        serve::ServerOptions opts;
        opts.listen.unixPath = testSocketPath("coverage");
        serve::Server server(opts);
        server.setCellRunnerForTest(syntheticOutcome);
        server.start();
        const serve::SocketAddress addr{opts.listen.unixPath,
                                        "127.0.0.1", 0};
        serve::HttpResponse resp;
        std::string error;
        serve::RetryOptions retry;
        retry.retries = 3;
        retry.backoffMs = 1;
        retry.seed = 42;

        ASSERT_TRUE(failpoint::armSpecList("serve.accept.fail=once"));
        // First connection is dropped before reading; the retry lands.
        ASSERT_TRUE(serve::httpGetRetry(addr, "/stats", &resp, &error,
                                        5000, retry))
            << error;
        EXPECT_EQ(resp.status, 200);
        failpoint::disarmAll();

        ASSERT_TRUE(failpoint::armSpecList("serve.recv.fail=once"));
        // The injected mid-request loss yields a 400; the daemon
        // stays up and the next request is normal.
        ASSERT_TRUE(serve::httpGet(addr, "/stats", &resp, &error))
            << error;
        EXPECT_EQ(resp.status, 400);
        failpoint::disarmAll();

        ASSERT_TRUE(failpoint::armSpecList("serve.send.fail=once"));
        // The response never leaves; the client sees a transport
        // failure and the retry succeeds.
        ASSERT_TRUE(serve::httpGetRetry(addr, "/stats", &resp, &error,
                                        5000, retry))
            << error;
        EXPECT_EQ(resp.status, 200);
        failpoint::disarmAll();
        server.shutdown();
    }

    // Fleet proxy boundaries: an injected backend connect failure and
    // an injected mid-response reset both fail over (here: to a
    // second attempt at the same single backend) without the client
    // seeing anything but the full, correct body.
    {
        serve::ServerOptions bopts;
        bopts.listen.unixPath = testSocketPath("fleetback");
        serve::Server backend(bopts);
        backend.setCellRunnerForTest(syntheticOutcome);
        backend.start();

        fleet::StaticDirectory dir;
        dir.add("w0", serve::SocketAddress{bopts.listen.unixPath,
                                           "127.0.0.1", 0});
        fleet::ProxyOptions popts;
        popts.listen.unixPath = testSocketPath("fleetproxy");
        popts.failoverPauseMs = 10;
        fleet::Proxy proxy(popts, &dir);
        proxy.start();
        const serve::SocketAddress paddr{popts.listen.unixPath,
                                         "127.0.0.1", 0};
        const std::string target =
            "/run?workload=" + serve::percentEncode(kWorkload) +
            "&schemes=NP";

        serve::HttpResponse resp;
        std::string error;
        ASSERT_TRUE(serve::httpGet(paddr, target, &resp, &error))
            << error;
        ASSERT_EQ(resp.status, 200);
        const std::string reference = resp.body;

        ASSERT_TRUE(
            failpoint::armSpecList("fleet.backend.connect=once"));
        ASSERT_TRUE(serve::httpGet(paddr, target, &resp, &error))
            << error;
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, reference);
        failpoint::disarmAll();

        ASSERT_TRUE(
            failpoint::armSpecList("fleet.backend.reset=once"));
        ASSERT_TRUE(serve::httpGet(paddr, target, &resp, &error))
            << error;
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(resp.body, reference);
        failpoint::disarmAll();

        EXPECT_GE(proxy.metrics().failovers.load(), 2u);
        proxy.shutdown();
        backend.shutdown();
    }

    // Supervisor boundaries: an injected fork failure (retried with
    // backoff) and an injected probe timeout. The spawned "worker" is
    // /bin/sleep — it never answers probes, which is fine: the
    // failpoint just has to be evaluated on a live pid.
    {
        TempDir socks("fleetsup");
        fleet::SupervisorOptions sopts;
        sopts.workers = 1;
        sopts.socketDir = socks.str();
        sopts.probeIntervalMs = 20;
        sopts.probeTimeoutMs = 100;
        sopts.restartBackoffMs = 10;
        fleet::Supervisor sup(sopts);
        sup.setSpawnFnForTest([](int, const std::string &) -> pid_t {
            const pid_t pid = ::fork();
            if (pid == 0) {
                ::execl("/bin/sleep", "sleep", "30",
                        static_cast<char *>(nullptr));
                ::_exit(127);
            }
            return pid;
        });
        ASSERT_TRUE(failpoint::armSpecList(
            "fleet.fork.fail=once,fleet.probe.timeout=once"));
        sup.start();
        const auto fired = [](const char *name) {
            for (const auto &info : failpoint::all())
                if (info.name == name)
                    return info.hits >= 1;
            return false;
        };
        EXPECT_TRUE(eventually(
            [&] { return fired("fleet.fork.fail"); }, 5000));
        EXPECT_TRUE(eventually(
            [&] { return fired("fleet.probe.timeout"); }, 5000));
        failpoint::disarmAll();
        sup.shutdown();
    }

    // The audit: every production failpoint in the binary has fired.
    const char *const expected[] = {
        "fleet.backend.connect", "fleet.backend.reset",
        "fleet.fork.fail",       "fleet.probe.timeout",
        "serve.accept.fail",     "serve.recv.fail",
        "serve.send.fail",       "trace_io.lock.eintr",
        "trace_io.lock.open",    "trace_io.read.corrupt",
        "trace_io.read.open",    "trace_io.write.enospc",
        "trace_io.write.open",   "trace_io.write.short",
        "trace_io.write.torn",
    };
    const auto all = failpoint::all();
    for (const char *name : expected) {
        bool found = false;
        for (const auto &info : all) {
            if (info.name != name)
                continue;
            found = true;
            EXPECT_GE(info.hits, 1u)
                << "failpoint '" << name << "' never fired";
        }
        EXPECT_TRUE(found)
            << "failpoint '" << name << "' not registered";
    }
}

} // namespace
} // namespace mgx
