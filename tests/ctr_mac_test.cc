/**
 * @file
 * AES-CTR engine and CMAC tests: RFC 4493 known-answer vectors, the
 * MGX counter construction, and the address/VN binding of tags.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/ctr_mode.h"
#include "crypto/mac.h"

namespace mgx::crypto {
namespace {

Key
keyFromHex(const char *hex)
{
    Key k{};
    for (int i = 0; i < 16; ++i) {
        auto nib = [](char c) -> u8 {
            if (c >= '0' && c <= '9')
                return static_cast<u8>(c - '0');
            return static_cast<u8>(c - 'a' + 10);
        };
        k[i] = static_cast<u8>((nib(hex[2 * i]) << 4) |
                               nib(hex[2 * i + 1]));
    }
    return k;
}

// -- counter construction ----------------------------------------------------

TEST(Counter, PacksAddressAndVn)
{
    Block ctr = makeCounter(0x0102030405060708ull, 0x1112131415161718ull);
    EXPECT_EQ(ctr[0], 0x01);
    EXPECT_EQ(ctr[7], 0x08);
    EXPECT_EQ(ctr[8], 0x11);
    EXPECT_EQ(ctr[15], 0x18);
}

TEST(Counter, DistinctAddressesDistinctCounters)
{
    EXPECT_NE(makeCounter(0, 7), makeCounter(16, 7));
    EXPECT_NE(makeCounter(0, 7), makeCounter(0, 8));
}

// -- CTR engine ---------------------------------------------------------------

TEST(CtrEngine, RoundTrip)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::vector<u8> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i);
    std::vector<u8> original = data;
    engine.crypt(0x1000, 5, data);
    EXPECT_NE(data, original);
    engine.crypt(0x1000, 5, data);
    EXPECT_EQ(data, original);
}

TEST(CtrEngine, WrongVnDoesNotDecrypt)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::vector<u8> data(64, 0xaa);
    std::vector<u8> original = data;
    engine.crypt(0x1000, 5, data);
    engine.crypt(0x1000, 6, data); // wrong VN
    EXPECT_NE(data, original);
}

TEST(CtrEngine, WrongAddressDoesNotDecrypt)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::vector<u8> data(64, 0xaa);
    std::vector<u8> original = data;
    engine.crypt(0x1000, 5, data);
    engine.crypt(0x2000, 5, data);
    EXPECT_NE(data, original);
}

TEST(CtrEngine, BlocksUseDistinctKeystream)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    // Two identical plaintext blocks within one buffer must encrypt
    // differently because the counter embeds each block's address.
    std::vector<u8> data(32, 0x00);
    engine.crypt(0x4000, 1, data);
    EXPECT_NE(0, std::memcmp(data.data(), data.data() + 16, 16));
}

TEST(CtrEngine, PartialTrailingBlock)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::vector<u8> data(21, 0x5c);
    std::vector<u8> original = data;
    engine.crypt(0, 9, data);
    engine.crypt(0, 9, data);
    EXPECT_EQ(data, original);
}

TEST(CtrEngine, MatchesKeystreamBlock)
{
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::vector<u8> zero(16, 0);
    engine.crypt(0x80, 3, zero);
    Block ks = engine.keystreamBlock(0x80, 3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(zero[static_cast<std::size_t>(i)], ks[i]);
}

TEST(CtrEngine, NistSp80038aKeystream)
{
    // SP 800-38A F.5.1 CTR-AES128.Encrypt, block #1: the keystream for
    // counter f0f1...feff is the encryption of that counter value. Our
    // counter packs (addr, vn), so set them to reproduce the vector.
    CtrEngine engine(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Addr addr = 0xf0f1f2f3f4f5f6f7ull;
    const Vn vn = 0xf8f9fafbfcfdfeffull;
    Block ks = engine.keystreamBlock(addr, vn);
    // E(K, counter) from the spec: ec8cdf7398607cb0f2d21675ea9ea1e4.
    const u8 expect[16] = {0xec, 0x8c, 0xdf, 0x73, 0x98, 0x60, 0x7c,
                           0xb0, 0xf2, 0xd2, 0x16, 0x75, 0xea, 0x9e,
                           0xa1, 0xe4};
    EXPECT_EQ(0, std::memcmp(ks.data(), expect, 16));
}

// -- CMAC ----------------------------------------------------------------------

TEST(Cmac, Rfc4493EmptyMessage)
{
    // RFC 4493 test vector #1: empty message.
    CmacEngine cmac(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Block tag = cmac.mac({});
    const u8 expect[16] = {0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37,
                           0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
                           0x67, 0x46};
    EXPECT_EQ(0, std::memcmp(tag.data(), expect, 16));
}

TEST(Cmac, Rfc4493SixteenBytes)
{
    // RFC 4493 test vector #2: one full block.
    CmacEngine cmac(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const u8 msg[16] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
                        0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
    Block tag = cmac.mac({msg, 16});
    const u8 expect[16] = {0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41,
                           0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
                           0x28, 0x7c};
    EXPECT_EQ(0, std::memcmp(tag.data(), expect, 16));
}

TEST(Cmac, Rfc4493FortyBytes)
{
    // RFC 4493 test vector #3: 40 bytes (incomplete final block).
    CmacEngine cmac(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const u8 msg[40] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
                        0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a,
                        0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c,
                        0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51,
                        0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11};
    Block tag = cmac.mac({msg, 40});
    const u8 expect[16] = {0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6,
                           0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
                           0xc8, 0x27};
    EXPECT_EQ(0, std::memcmp(tag.data(), expect, 16));
}

TEST(Cmac, TagBindsAddress)
{
    CmacEngine cmac(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    std::vector<u8> data(64, 0x11);
    EXPECT_NE(cmac.tag(data, 0x1000, 3), cmac.tag(data, 0x2000, 3));
}

TEST(Cmac, TagBindsVn)
{
    CmacEngine cmac(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    std::vector<u8> data(64, 0x11);
    EXPECT_NE(cmac.tag(data, 0x1000, 3), cmac.tag(data, 0x1000, 4));
}

TEST(Cmac, TagBindsData)
{
    CmacEngine cmac(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    std::vector<u8> a(64, 0x11), b(64, 0x11);
    b[63] ^= 1;
    EXPECT_NE(cmac.tag(a, 0x1000, 3), cmac.tag(b, 0x1000, 3));
}

} // namespace
} // namespace mgx::crypto
