/**
 * @file
 * Golden cycle/traffic equivalence tests for the simulation hot path.
 *
 * The hot-path overhaul (handle-based stats, incremental range decode,
 * the DRAM same-open-row fast path, the compact trace layout) is a
 * speed change, not a model change: every cycle count and traffic
 * total must match the pre-overhaul simulator bit for bit. The tables
 * below were captured from the seed implementation (commit d8b123c,
 * the naive decode-per-line / string-map-stats hot path) for a
 * cross-domain sample of registry workloads under every scheme, and
 * pin the model's outputs against accidental drift from future
 * optimizations.
 *
 * The per-class mac/vn/tree splits for the cache-backed schemes (BP,
 * MGX_MAC) reflect the *corrected* writeback attribution — dirty
 * victims are charged to the evicted line's own metadata class — so
 * those columns differ from the seed's (which charged every flush
 * writeback to tree and every mid-run eviction to the accessing
 * line's class); their sum and every other column are unchanged.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/report.h"

namespace mgx::sim {
namespace {

using protection::Scheme;

struct GoldenRow
{
    const char *workload;
    const char *platform;
    Scheme scheme;
    Cycles cycles;
    u64 data, expand, mac, vn, tree;
};

// Captured as described in the file header; regenerate with
//   mgx_run --workload <w> --threads 1 --json out.json
// only when the *model* (not the simulator plumbing) changes.
constexpr GoldenRow kGolden[] = {
    {"core/matmul", "Cloud", Scheme::NP, 701594, 8388608, 0, 0, 0, 0},
    {"core/matmul", "Cloud", Scheme::MGX, 711128, 8388608, 0, 131072, 0,
     0},
    {"core/matmul", "Cloud", Scheme::MGX_VN, 782604, 8388608, 0,
     1048576, 0, 0},
    {"core/matmul", "Cloud", Scheme::MGX_MAC, 820273, 8388608, 0,
     131072, 1572864, 240896},
    {"core/matmul", "Cloud", Scheme::BP, 1024172, 8388608, 0, 1574656,
     1574656, 253440},

    {"video/h264?frames=4", "Genome", Scheme::NP, 9829440, 18662400, 0,
     0, 0, 0},
    {"video/h264?frames=4", "Genome", Scheme::MGX, 9836266, 18662400,
     0, 292032, 0, 0},
    {"video/h264?frames=4", "Genome", Scheme::MGX_VN, 9883186,
     18662400, 0, 2332800, 0, 0},
    {"video/h264?frames=4", "Genome", Scheme::MGX_MAC, 9899220,
     18662400, 0, 292032, 3499200, 533952},
    {"video/h264?frames=4", "Genome", Scheme::BP, 10035704, 18662400,
     0, 3499200, 3499200, 534080},

    {"graph/google-plus/pagerank", "Graph", Scheme::NP, 848330,
     41454120, 0, 0, 0, 0},
    {"graph/google-plus/pagerank", "Graph", Scheme::MGX, 858118,
     41454120, 2520, 648192, 0, 0},
    {"graph/google-plus/pagerank", "Graph", Scheme::MGX_VN, 934172,
     41454120, 216, 5182272, 0, 0},
    {"graph/google-plus/pagerank", "Graph", Scheme::MGX_MAC, 971812,
     41454120, 216, 648192, 5222592, 799488},
    {"graph/google-plus/pagerank", "Graph", Scheme::BP, 1061713,
     41454120, 216, 5223936, 5223936, 809088},

    {"genome/chr1PacBio?reads=2", "Genome", Scheme::NP, 154710, 153600,
     0, 0, 0, 0},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::MGX, 154903,
     153600, 0, 20800, 0, 0},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::MGX_VN, 154903,
     153600, 0, 20800, 0, 0},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::MGX_MAC, 155988,
     153600, 0, 20800, 32064, 8128},
    {"genome/chr1PacBio?reads=2", "Genome", Scheme::BP, 155992, 153600,
     0, 32064, 32064, 8128},

    {"dnn/DLRM?task=inference", "Cloud", Scheme::NP, 174090, 3921664,
     0, 0, 0, 0},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::MGX, 188942, 3921664,
     1792, 271296, 0, 0},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::MGX_VN, 205174,
     3921664, 0, 676928, 0, 0},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::MGX_MAC, 290302,
     3921664, 0, 271296, 745408, 748864},
    {"dnn/DLRM?task=inference", "Cloud", Scheme::BP, 326141, 3921664,
     0, 765184, 765184, 768704},
};

TEST(GoldenEquivalence, CyclesAndTrafficMatchSeedSimulator)
{
    // One grid per workload (they run on different default platforms).
    std::vector<std::string> workloads;
    for (const GoldenRow &row : kGolden) {
        if (workloads.empty() || workloads.back() != row.workload)
            workloads.push_back(row.workload);
    }
    ResultSet rs = Experiment().workloads(workloads).run();

    for (const GoldenRow &row : kGolden) {
        const RunResult *r =
            rs.find(row.workload, row.platform, row.scheme);
        ASSERT_NE(r, nullptr)
            << row.workload << " " << row.platform << " "
            << protection::schemeName(row.scheme);
        const std::string ctx = std::string(row.workload) + "/" +
                                protection::schemeName(row.scheme);
        EXPECT_EQ(r->totalCycles, row.cycles) << ctx;
        EXPECT_EQ(r->traffic.dataBytes, row.data) << ctx;
        EXPECT_EQ(r->traffic.expandBytes, row.expand) << ctx;
        EXPECT_EQ(r->traffic.macBytes, row.mac) << ctx;
        EXPECT_EQ(r->traffic.vnBytes, row.vn) << ctx;
        EXPECT_EQ(r->traffic.treeBytes, row.tree) << ctx;
    }
}

TEST(GoldenEquivalence, ReplayIsDeterministic)
{
    // Two replays of the same trace on fresh engines are bitwise
    // identical — the property bench_perf_throughput leans on.
    Experiment e;
    e.workload("core/matmul").schemes({Scheme::BP}).threads(1);
    ResultSet a = e.run();
    ResultSet b = e.run();
    ASSERT_EQ(a.records().size(), 1u);
    ASSERT_EQ(b.records().size(), 1u);
    EXPECT_EQ(a.records()[0].result.totalCycles,
              b.records()[0].result.totalCycles);
    EXPECT_EQ(a.records()[0].result.dramAccesses,
              b.records()[0].result.dramAccesses);
}

TEST(GoldenEquivalence, DramAccessesReportsRealDramCount)
{
    // The satellite fix: dramAccesses is the DRAM request count, not
    // the engine's logical-access count. For NP the whole traffic is
    // data lines, so the two are related by the 64 B block size.
    ResultSet rs = Experiment()
                       .workload("core/matmul")
                       .schemes({Scheme::NP})
                       .threads(1)
                       .run();
    ASSERT_EQ(rs.records().size(), 1u);
    const RunResult &r = rs.records()[0].result;
    EXPECT_GT(r.logicalAccesses, 0u);
    EXPECT_EQ(r.dramAccesses, r.traffic.totalBytes() / 64);
    EXPECT_GT(r.dramAccesses, r.logicalAccesses);
    EXPECT_GT(r.traceBytes, 0u);
}

} // namespace
} // namespace mgx::sim
