/**
 * @file
 * Protection-engine edge cases: unaligned and tiny accesses, huge
 * single accesses, granularity overrides interacting with MGX_MAC,
 * flush idempotency, and scheme-specific metadata accounting
 * boundaries.
 */

#include <gtest/gtest.h>

#include "protection/protection_engine.h"

namespace mgx::protection {
namespace {

using core::LogicalAccess;

struct EngineFixture
{
    explicit EngineFixture(Scheme scheme, u32 mac_gran = 512)
        : dram(dram::ddr4_2400(1))
    {
        cfg.scheme = scheme;
        cfg.protectedBytes = 1ull << 30;
        cfg.macGranularity = mac_gran;
        engine.emplace(cfg, &dram);
    }

    dram::DramSystem dram;
    ProtectionConfig cfg;
    std::optional<ProtectionEngine> engine;
};

TEST(EngineEdge, ZeroByteAccessIsFree)
{
    EngineFixture f(Scheme::BP);
    Cycles done = f.engine->access(
        {0, 0, 1, AccessType::Read, DataClass::Generic, 0}, 100);
    EXPECT_EQ(done, 100u);
    EXPECT_EQ(f.engine->traffic().totalBytes(), 0u);
}

TEST(EngineEdge, SingleByteReadExpandsToMacBlock)
{
    EngineFixture f(Scheme::MGX);
    f.engine->access({1000, 1, 1, AccessType::Read, DataClass::Generic, 0},
                     0);
    const auto &t = f.engine->traffic();
    EXPECT_EQ(t.dataBytes, 1u);
    EXPECT_EQ(t.expandBytes, 511u); // whole 512 B block fetched
    EXPECT_EQ(t.macBytes, 64u);
}

TEST(EngineEdge, UnalignedReadSpanningTwoMacBlocks)
{
    EngineFixture f(Scheme::MGX);
    // [300, 812) straddles blocks [0,512) and [512,1024).
    f.engine->access({300, 512, 1, AccessType::Read, DataClass::Generic, 0},
                     0);
    const auto &t = f.engine->traffic();
    EXPECT_EQ(t.dataBytes, 512u);
    EXPECT_EQ(t.expandBytes, 512u);
    EXPECT_EQ(t.macBytes, 64u); // both tags share one line
}

TEST(EngineEdge, HugeSingleAccessScalesLinearly)
{
    EngineFixture f(Scheme::MGX);
    f.engine->access({0, 64 << 20, 1, AccessType::Read, DataClass::Generic,
                      0},
                     0);
    const auto &t = f.engine->traffic();
    // 64 MB at 512 B/tag, 8 tags/line -> 16K lines -> 1 MB of MACs.
    EXPECT_EQ(t.macBytes, 1ull << 20);
    EXPECT_NEAR(t.overhead(), 1.0 / 64.0, 1e-3);
}

TEST(EngineEdge, OverrideIgnoredByBaselineSchemes)
{
    // BP and MGX_VN always protect at 64 B regardless of the hint.
    for (Scheme s : {Scheme::BP, Scheme::MGX_VN}) {
        EngineFixture f(s);
        EXPECT_EQ(f.cfg.effectiveMacGranularity(4096), 64u)
            << schemeName(s);
    }
    EngineFixture f(Scheme::MGX_MAC);
    EXPECT_EQ(f.cfg.effectiveMacGranularity(4096), 4096u);
    EXPECT_EQ(f.cfg.effectiveMacGranularity(0), 512u);
}

TEST(EngineEdge, MgxMacCombinesVnTreeWithCoarseMacs)
{
    EngineFixture f(Scheme::MGX_MAC);
    f.engine->access({0, 4096, 1, AccessType::Read, DataClass::Generic, 0},
                     0);
    const auto &t = f.engine->traffic();
    EXPECT_GT(t.vnBytes, 0u);   // still pays the off-chip VN path
    EXPECT_GT(t.treeBytes, 0u); // and the tree walk
    EXPECT_EQ(t.macBytes, 64u); // but coarse MACs: one line per 4 KB
}

TEST(EngineEdge, FlushIsIdempotent)
{
    EngineFixture f(Scheme::BP);
    f.engine->access({0, 4096, 1, AccessType::Write, DataClass::Generic, 0},
                     0);
    Cycles first = f.engine->flush(0);
    const u64 traffic_after_first = f.engine->traffic().totalBytes();
    Cycles second = f.engine->flush(first);
    EXPECT_EQ(f.engine->traffic().totalBytes(), traffic_after_first);
    EXPECT_EQ(second, first);
}

TEST(EngineEdge, NpFlushIsFree)
{
    EngineFixture f(Scheme::NP);
    f.engine->access({0, 4096, 1, AccessType::Write, DataClass::Generic, 0},
                     0);
    EXPECT_EQ(f.engine->flush(42), 42u);
}

TEST(EngineEdge, RepeatedReadsHitMetadataCache)
{
    EngineFixture f(Scheme::BP);
    f.engine->access({0, 512, 1, AccessType::Read, DataClass::Generic, 0},
                     0);
    const u64 first = f.engine->traffic().totalBytes();
    f.engine->access({0, 512, 1, AccessType::Read, DataClass::Generic, 0},
                     0);
    // Second pass adds only the data bytes: all metadata is cached.
    EXPECT_EQ(f.engine->traffic().totalBytes(), first + 512);
}

TEST(EngineEdge, WriteThenReadSameBlockUnderMgx)
{
    EngineFixture f(Scheme::MGX);
    Cycles w = f.engine->access({0, 512, 2, AccessType::Write,
                                 DataClass::Generic, 0},
                                0);
    Cycles r = f.engine->access({0, 512, 2, AccessType::Read,
                                 DataClass::Generic, 0},
                                w);
    EXPECT_GT(r, w);
    const auto &t = f.engine->traffic();
    EXPECT_EQ(t.dataBytes, 1024u);
    // The 512 B write covers 1 of the tag line's 8 tags, so the line
    // is read-modify-written (128 B); the read adds one fetch (64 B).
    EXPECT_EQ(t.macBytes, 192u);
}

TEST(EngineEdge, AccessAtRegionTopStaysInBounds)
{
    EngineFixture f(Scheme::BP);
    const Addr top = f.cfg.protectedBytes - 4096;
    Cycles done = f.engine->access({top, 4096, 1, AccessType::Read,
                                    DataClass::Generic, 0},
                                   0);
    EXPECT_GT(done, 0u);
    // Metadata addresses must land above the data region.
    EXPECT_GE(f.engine->layout().macLineAddr(top, 64),
              f.cfg.protectedBytes);
    EXPECT_GE(f.engine->layout().vnLineAddr(top),
              f.engine->layout().macBase());
}

TEST(EngineEdge, LogicalAccessCountTracked)
{
    EngineFixture f(Scheme::MGX);
    for (int i = 0; i < 7; ++i)
        f.engine->access({static_cast<Addr>(i) * 4096, 512, 1,
                          AccessType::Read, DataClass::Generic, 0},
                         0);
    EXPECT_EQ(f.engine->stats().get("logical_accesses"), 7u);
}

} // namespace
} // namespace mgx::protection
