/**
 * @file
 * Protection-layer tests: metadata layout math, the 32 KB metadata
 * cache, and per-scheme traffic expansion of the timing engine,
 * including exact expected byte counts for simple access patterns.
 */

#include <gtest/gtest.h>

#include "core/access.h"
#include "protection/meta_cache.h"
#include "protection/metadata_layout.h"
#include "protection/protection_engine.h"

namespace mgx::protection {
namespace {

using core::LogicalAccess;

ProtectionConfig
smallConfig(Scheme scheme)
{
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    cfg.protectedBytes = 1ull << 30; // 1 GB keeps the tree shallow
    return cfg;
}

// -- MetadataLayout ------------------------------------------------------------

TEST(MetadataLayout, RegionsAreDisjoint)
{
    MetadataLayout layout(smallConfig(Scheme::BP));
    EXPECT_GE(layout.macBase(), 1ull << 30);
    EXPECT_GT(layout.vnBase(), layout.macBase());
    // MAC region sized for 64 B granularity: 1 GB / 64 * 8 = 128 MB.
    EXPECT_EQ(layout.vnBase() - layout.macBase(), 128ull << 20);
}

TEST(MetadataLayout, MacLineSharing)
{
    MetadataLayout layout(smallConfig(Scheme::MGX));
    // At 512 B granularity, 8 tags (64 B of tags) cover 4 KB of data.
    Addr line0 = layout.macLineAddr(0, 512);
    EXPECT_EQ(layout.macLineAddr(4095, 512), line0);
    EXPECT_EQ(layout.macLineAddr(4096, 512), line0 + 64);
}

TEST(MetadataLayout, VnLineCovers512Data)
{
    MetadataLayout layout(smallConfig(Scheme::BP));
    Addr line0 = layout.vnLineAddr(0);
    EXPECT_EQ(layout.vnLineAddr(511), line0);
    EXPECT_EQ(layout.vnLineAddr(512), line0 + 64);
}

TEST(MetadataLayout, TreeLevelsShrinkByArity)
{
    ProtectionConfig cfg = smallConfig(Scheme::BP);
    MetadataLayout layout(cfg);
    // 1 GB data -> 128 MB VN region -> 2M VN lines -> log8 ~ 7 levels
    // down to a single root.
    EXPECT_GE(layout.treeLevels(), 5u);
    EXPECT_LE(layout.treeLevels(), 8u);
    // Nodes on one path must live at increasing addresses per level.
    Addr prev = 0;
    for (u32 l = 1; l <= layout.treeLevels(); ++l) {
        Addr node = layout.treeNodeAddr(l, 12345 * 64);
        EXPECT_GT(node, prev);
        prev = node;
    }
}

TEST(MetadataLayout, OnChipVnSchemesHaveNoTree)
{
    EXPECT_EQ(MetadataLayout(smallConfig(Scheme::MGX)).treeLevels(), 0u);
    EXPECT_EQ(MetadataLayout(smallConfig(Scheme::MGX_VN)).treeLevels(),
              0u);
    EXPECT_GT(MetadataLayout(smallConfig(Scheme::MGX_MAC)).treeLevels(),
              0u);
}

TEST(MetadataLayout, MetadataFootprintMgxVsBp)
{
    // MGX stores only MACs; BP adds VNs + tree. BP footprint must be
    // strictly larger.
    EXPECT_LT(MetadataLayout(smallConfig(Scheme::MGX)).metadataBytes(),
              MetadataLayout(smallConfig(Scheme::BP)).metadataBytes());
}

// -- MetaCache -----------------------------------------------------------------

TEST(MetaCache, MissThenHit)
{
    MetaCache cache(32 << 10, 8);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit); // same 64 B line
}

TEST(MetaCache, DirtyEvictionReportsVictim)
{
    // 2-way, 2-set tiny cache: 4 lines of 64 B = 256 B.
    MetaCache cache(256, 2);
    ASSERT_EQ(cache.numSets(), 2u);
    // Fill set 0 (line addresses with even line index).
    EXPECT_FALSE(cache.access(0 * 64, true).hit);
    EXPECT_FALSE(cache.access(2 * 64, true).hit);
    // Third distinct line in set 0 evicts the LRU dirty line (0).
    CacheResult r = cache.access(4 * 64, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
}

TEST(MetaCache, LruOrderRespected)
{
    MetaCache cache(256, 2);
    cache.access(0 * 64, false);
    cache.access(2 * 64, false);
    cache.access(0 * 64, false); // touch 0 -> 2 becomes LRU
    cache.access(4 * 64, false); // evicts 2
    EXPECT_TRUE(cache.access(0 * 64, false).hit);
    EXPECT_FALSE(cache.access(2 * 64, false).hit);
}

TEST(MetaCache, CleanEvictionHasNoWriteback)
{
    MetaCache cache(256, 2);
    cache.access(0 * 64, false);
    cache.access(2 * 64, false);
    CacheResult r = cache.access(4 * 64, false);
    EXPECT_FALSE(r.writeback);
}

TEST(MetaCache, FlushReturnsAllDirtyLines)
{
    MetaCache cache(32 << 10, 8);
    cache.access(0x0, true);
    cache.access(0x40, true);
    cache.access(0x80, false);
    std::vector<MetaCache::FlushedLine> dirty;
    cache.flush(dirty);
    EXPECT_EQ(dirty.size(), 2u);
    // After flush everything misses again.
    EXPECT_FALSE(cache.access(0x0, false).hit);
}

TEST(MetaCache, EvictionReportsVictimsOwnClass)
{
    // A VN access that evicts a dirty tree line must surface the
    // *victim's* class, so the writeback lands in treeBytes even
    // though the new line is VN metadata.
    MetaCache cache(256, 2);
    cache.access(0 * 64, true, MetaClass::Tree);
    cache.access(2 * 64, true, MetaClass::Mac);
    CacheResult r = cache.access(4 * 64, true, MetaClass::Vn);
    ASSERT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_EQ(r.victimClass, MetaClass::Tree)
        << "evicted a " << metaClassName(r.victimClass) << " line";
    // Next eviction in the set surrenders the MAC line.
    r = cache.access(6 * 64, false, MetaClass::Vn);
    ASSERT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 2u * 64);
    EXPECT_EQ(r.victimClass, MetaClass::Mac)
        << "evicted a " << metaClassName(r.victimClass) << " line";
}

TEST(MetaCache, FlushReportsPerLineClasses)
{
    MetaCache cache(32 << 10, 8);
    cache.access(0x0, true, MetaClass::Vn);
    cache.access(0x40, true, MetaClass::Tree);
    cache.access(0x80, true, MetaClass::Mac);
    std::vector<MetaCache::FlushedLine> dirty;
    cache.flush(dirty);
    ASSERT_EQ(dirty.size(), 3u);
    u32 vn = 0, mac = 0, tree = 0;
    for (const auto &line : dirty) {
        if (line.cls == MetaClass::Vn) ++vn;
        if (line.cls == MetaClass::Mac) ++mac;
        if (line.cls == MetaClass::Tree) ++tree;
    }
    EXPECT_EQ(vn, 1u);
    EXPECT_EQ(mac, 1u);
    EXPECT_EQ(tree, 1u);
}

// -- ProtectionEngine traffic ----------------------------------------------------

/** Data+metadata bytes for one logical access under a scheme. */
TrafficBreakdown
trafficFor(Scheme scheme, const LogicalAccess &acc)
{
    dram::DramSystem dram(dram::ddr4_2400(1));
    ProtectionEngine engine(smallConfig(scheme), &dram);
    engine.access(acc, 0);
    return engine.traffic();
}

TEST(ProtectionEngine, FlushAttributesWritebacksByClass)
{
    // A BP write dirties VN lines (and possibly tree/MAC lines) in the
    // cache; the end-of-run flush must charge each dirty line to its
    // own class instead of lumping everything into treeBytes.
    dram::DramSystem dram(dram::ddr4_2400(1));
    ProtectionEngine engine(smallConfig(Scheme::BP), &dram);
    engine.access({0, 16 << 10, 1, AccessType::Write,
                   DataClass::Generic, 0},
                  0);
    const TrafficBreakdown before = engine.traffic();
    engine.flush(0);
    const TrafficBreakdown after = engine.traffic();

    const u64 d_vn = after.vnBytes - before.vnBytes;
    const u64 d_mac = after.macBytes - before.macBytes;
    const u64 d_tree = after.treeBytes - before.treeBytes;
    // 16 KB of dirty data -> 256 VNs -> 32 dirty VN lines, plus dirty
    // MAC lines and the dirtied tree path. VN and MAC flush traffic
    // must be attributed to their own categories.
    EXPECT_EQ(d_vn, (16u << 10) / 64 / 8 * 64);
    EXPECT_GT(d_mac, 0u);
    EXPECT_GT(d_tree, 0u);
    // Data and expand traffic never move at flush time.
    EXPECT_EQ(after.dataBytes, before.dataBytes);
    EXPECT_EQ(after.expandBytes, before.expandBytes);
}

TEST(ProtectionEngine, NpIsDataOnly)
{
    TrafficBreakdown t = trafficFor(
        Scheme::NP, {0, 4096, 1, AccessType::Read, DataClass::Generic, 0});
    EXPECT_EQ(t.dataBytes, 4096u);
    EXPECT_EQ(t.totalBytes(), 4096u);
}

TEST(ProtectionEngine, MgxRead4kExactly64MacBytes)
{
    // 4 KB aligned read at 512 B granularity: 8 tags = one 64 B line.
    TrafficBreakdown t = trafficFor(
        Scheme::MGX,
        {0, 4096, 1, AccessType::Read, DataClass::Generic, 0});
    EXPECT_EQ(t.dataBytes, 4096u);
    EXPECT_EQ(t.macBytes, 64u);
    EXPECT_EQ(t.vnBytes, 0u);
    EXPECT_EQ(t.treeBytes, 0u);
    EXPECT_EQ(t.expandBytes, 0u);
    EXPECT_NEAR(t.overhead(), 0.0156, 0.001);
}

TEST(ProtectionEngine, MgxAlignedWriteNeedsNoMacFetch)
{
    TrafficBreakdown t = trafficFor(
        Scheme::MGX,
        {0, 4096, 1, AccessType::Write, DataClass::Generic, 0});
    // The tag line is fully regenerated: one write, no RMW fetch.
    EXPECT_EQ(t.macBytes, 64u);
}

TEST(ProtectionEngine, MgxPartialWriteReadsModifiesWrites)
{
    // A 256 B write inside one 512 B MAC block: the block's other 256 B
    // must be fetched and the tag line read-modify-written.
    TrafficBreakdown t = trafficFor(
        Scheme::MGX,
        {0, 256, 1, AccessType::Write, DataClass::Generic, 0});
    EXPECT_EQ(t.dataBytes, 256u);
    EXPECT_EQ(t.expandBytes, 256u);        // block remainder
    EXPECT_EQ(t.macBytes, 128u);           // tag line read + write
}

TEST(ProtectionEngine, MgxVnUsesFineMacs)
{
    // 4 KB read with 64 B MACs: 64 tags = 8 tag lines = 512 B.
    TrafficBreakdown t = trafficFor(
        Scheme::MGX_VN,
        {0, 4096, 1, AccessType::Read, DataClass::Generic, 0});
    EXPECT_EQ(t.macBytes, 512u);
    EXPECT_NEAR(t.overhead(), 0.125, 0.001);
}

TEST(ProtectionEngine, MacGranularityOverrideRespected)
{
    // DLRM-style: a 64 B gather with a 64 B MAC override costs exactly
    // one tag line instead of forcing a 512 B block verification.
    TrafficBreakdown coarse = trafficFor(
        Scheme::MGX, {0, 64, 1, AccessType::Read, DataClass::Weight, 0});
    TrafficBreakdown fine = trafficFor(
        Scheme::MGX, {0, 64, 1, AccessType::Read, DataClass::Weight, 64});
    EXPECT_EQ(coarse.expandBytes, 448u); // whole 512 B block fetched
    EXPECT_EQ(fine.expandBytes, 0u);
    EXPECT_EQ(fine.macBytes, 64u);
}

TEST(ProtectionEngine, BpStreamingReadOverhead)
{
    // Streaming 64 KB read under BP: per 512 B of data one VN line and
    // one MAC line (both cold misses), plus tree reads that mostly hit
    // after the first walk. Overhead must land near 25-30%.
    dram::DramSystem dram(dram::ddr4_2400(1));
    ProtectionEngine engine(smallConfig(Scheme::BP), &dram);
    engine.access({0, 64 << 10, 1, AccessType::Read, DataClass::Generic, 0},
                  0);
    TrafficBreakdown t = engine.traffic();
    EXPECT_EQ(t.dataBytes, 64u << 10);
    EXPECT_EQ(t.vnBytes, 8u << 10);  // 128 VN lines
    EXPECT_EQ(t.macBytes, 8u << 10); // 128 MAC lines
    EXPECT_GT(t.treeBytes, 0u);
    double ovh = t.overhead();
    EXPECT_GT(ovh, 0.25);
    EXPECT_LT(ovh, 0.32);
}

TEST(ProtectionEngine, BpWriteCostsMoreThanRead)
{
    auto run = [](bool write) {
        dram::DramSystem dram(dram::ddr4_2400(1));
        ProtectionEngine engine(smallConfig(Scheme::BP), &dram);
        engine.access({0, 1 << 20, 1,
                       write ? AccessType::Write : AccessType::Read,
                       DataClass::Generic, 0},
                      0);
        engine.flush(0);
        return engine.traffic().overhead();
    };
    EXPECT_GT(run(true), run(false));
}

TEST(ProtectionEngine, TrafficOrderingAcrossSchemes)
{
    // For a mixed read/write streaming pattern the paper's ordering
    // must hold: NP < MGX < MGX_VN and MGX_MAC < BP.
    auto total = [](Scheme s) {
        dram::DramSystem dram(dram::ddr4_2400(1));
        ProtectionEngine engine(smallConfig(s), &dram);
        Cycles t = 0;
        for (int i = 0; i < 8; ++i) {
            t = engine.access({static_cast<Addr>(i) << 20, 512 << 10,
                               static_cast<Vn>(i + 1),
                               i % 2 ? AccessType::Write
                                     : AccessType::Read,
                               DataClass::Generic, 0},
                              t);
        }
        engine.flush(t);
        return engine.traffic().totalBytes();
    };
    const u64 np = total(Scheme::NP);
    const u64 mgx = total(Scheme::MGX);
    const u64 mgx_vn = total(Scheme::MGX_VN);
    const u64 mgx_mac = total(Scheme::MGX_MAC);
    const u64 bp = total(Scheme::BP);
    EXPECT_LT(np, mgx);
    EXPECT_LT(mgx, mgx_vn);
    EXPECT_LT(mgx, mgx_mac);
    EXPECT_LT(mgx_vn, bp);
    EXPECT_LT(mgx_mac, bp);
}

TEST(ProtectionEngine, CryptoLatencyOnReadPath)
{
    dram::DramSystem d1(dram::ddr4_2400(1));
    ProtectionConfig cfg = smallConfig(Scheme::MGX);
    ProtectionEngine e1(cfg, &d1);
    Cycles read_done = e1.access(
        {0, 512, 1, AccessType::Read, DataClass::Generic, 0}, 0);

    dram::DramSystem d2(dram::ddr4_2400(1));
    cfg.cryptoLatency = 0;
    ProtectionEngine e2(cfg, &d2);
    Cycles read_nolat = e2.access(
        {0, 512, 1, AccessType::Read, DataClass::Generic, 0}, 0);
    EXPECT_EQ(read_done, read_nolat + 40);
}

TEST(ProtectionEngine, MetaCacheAbsorbsRepeatedWalks)
{
    dram::DramSystem dram(dram::ddr4_2400(1));
    ProtectionEngine engine(smallConfig(Scheme::BP), &dram);
    engine.access({0, 512, 1, AccessType::Read, DataClass::Generic, 0},
                  0);
    const u64 tree_first = engine.traffic().treeBytes;
    engine.access({512, 512, 1, AccessType::Read, DataClass::Generic, 0},
                  0);
    // The second access's tree walk hits cached ancestors immediately.
    EXPECT_LT(engine.traffic().treeBytes - tree_first, tree_first + 1);
}

} // namespace
} // namespace mgx::protection
