/**
 * @file
 * Pipelined-replay tests: the SPSC PhaseRing itself (FIFO order,
 * blocking back-pressure, both shutdown sides, error propagation),
 * streamed-vs-pipelined bitwise equivalence for one cell per domain,
 * ring-capacity invariance, the trace-cache tee, and race regression
 * tests for concurrent trace-cache eviction. This suite (plus
 * streaming_test and experiment_test) runs under ThreadSanitizer in
 * CI (-DMGX_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/phase_ring.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "sim/trace_io.h"
#include "sim/workload_registry.h"

namespace mgx::sim {
namespace {

namespace fs = std::filesystem;

using protection::ProtectionConfig;
using protection::ProtectionEngine;
using protection::Scheme;

/** One small, fast workload per domain (same set as streaming_test). */
const char *const kDomainWorkloads[] = {
    "core/matmul?m=256&n=256&k=256",
    "dnn/MobileNet?task=training",
    "graph/google-plus/pagerank?vector=random",
    "genome/chr1PacBio?reads=8",
    "video/h264?frames=6",
};

RunResult
runSerial(const std::string &workload, Scheme scheme)
{
    const Platform platform = defaultPlatform(workload);
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    auto kernel = makeKernel(workload, platform);
    auto source = kernel->stream();
    return model.run(*source);
}

RunResult
runRingPipelined(const std::string &workload, Scheme scheme,
                 std::size_t ring_capacity = 8)
{
    const Platform platform = defaultPlatform(workload);
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    auto kernel = makeKernel(workload, platform);
    auto source = kernel->stream();
    PipelineOptions options;
    options.ringCapacity = ring_capacity;
    return runPipelined(model, *source, options);
}

/**
 * Every deterministic field must match — including the metaCache
 * counters and the content-derived footprint fields (traceBytes,
 * peakPhaseBytes). Only the pipeline stall counters may differ.
 */
void
expectBitwiseEqual(const RunResult &a, const RunResult &b,
                   const std::string &label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.memoryCycles, b.memoryCycles) << label;
    EXPECT_EQ(a.traffic.dataBytes, b.traffic.dataBytes) << label;
    EXPECT_EQ(a.traffic.expandBytes, b.traffic.expandBytes) << label;
    EXPECT_EQ(a.traffic.macBytes, b.traffic.macBytes) << label;
    EXPECT_EQ(a.traffic.vnBytes, b.traffic.vnBytes) << label;
    EXPECT_EQ(a.traffic.treeBytes, b.traffic.treeBytes) << label;
    EXPECT_EQ(a.dramAccesses, b.dramAccesses) << label;
    EXPECT_EQ(a.logicalAccesses, b.logicalAccesses) << label;
    EXPECT_EQ(a.metaCacheHits, b.metaCacheHits) << label;
    EXPECT_EQ(a.metaCacheMisses, b.metaCacheMisses) << label;
    EXPECT_EQ(a.metaCacheWritebacks, b.metaCacheWritebacks) << label;
    EXPECT_EQ(a.traceBytes, b.traceBytes) << label;
    EXPECT_EQ(a.peakPhaseBytes, b.peakPhaseBytes) << label;
    EXPECT_EQ(a.seconds, b.seconds) << label;
}

/** A tiny distinguishable phase for the ring unit tests. */
core::Phase
testPhase(u64 index)
{
    core::Phase p;
    p.name = "phase" + std::to_string(index);
    p.computeCycles = index;
    p.accesses.push_back(
        {index * 64, 64, index, AccessType::Write, DataClass::Generic, 0});
    return p;
}

// ---------------------------------------------------------------------
// PhaseRing unit tests
// ---------------------------------------------------------------------

TEST(PhaseRing, FifoOrderThroughTinyRing)
{
    // Capacity 2 forces constant back-pressure: the producer can be
    // at most two phases ahead, yet order and content must survive.
    constexpr u64 kPhases = 500;
    core::PhaseRing ring(2);
    std::thread producer([&ring] {
        for (u64 i = 0; i < kPhases; ++i)
            ASSERT_TRUE(ring.push(testPhase(i)));
        ring.closeProducer();
    });
    core::Phase scratch;
    u64 next = 0;
    while (ring.pop(scratch)) {
        const core::Phase expected = testPhase(next);
        EXPECT_EQ(scratch.name, expected.name);
        EXPECT_EQ(scratch.computeCycles, expected.computeCycles);
        ASSERT_EQ(scratch.accesses.size(), 1u);
        EXPECT_EQ(scratch.accesses[0].addr, expected.accesses[0].addr);
        EXPECT_EQ(scratch.accesses[0].vn, expected.accesses[0].vn);
        ++next;
    }
    producer.join();
    EXPECT_EQ(next, kPhases);
    const core::PhaseRing::Stats stats = ring.stats();
    EXPECT_EQ(stats.phases, kPhases);
    EXPECT_GE(stats.maxOccupancy, 1u);
    EXPECT_LE(stats.maxOccupancy, 2u);
}

TEST(PhaseRing, ZeroCapacityIsClampedToOne)
{
    core::PhaseRing ring(0);
    EXPECT_EQ(ring.capacity(), 1u);
}

TEST(PhaseRing, ConsumerEarlyExitReleasesBlockedProducer)
{
    core::PhaseRing ring(2);
    std::atomic<u64> pushed{0};
    std::thread producer([&ring, &pushed] {
        for (u64 i = 0; i < 100; ++i) {
            if (!ring.push(testPhase(i)))
                return; // consumer closed: clean stop
            pushed.fetch_add(1, std::memory_order_relaxed);
        }
    });
    core::Phase scratch;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.pop(scratch));
    ring.closeConsumer();
    producer.join(); // must not deadlock on the full ring
    // 3 popped + at most 2 still buffered ever succeeded.
    EXPECT_LE(pushed.load(), 5u);
    EXPECT_GE(pushed.load(), 3u);
}

TEST(PhaseRing, ProducerFailurePropagatesAfterBufferedPrefix)
{
    core::PhaseRing ring(8);
    std::thread producer([&ring] {
        for (u64 i = 0; i < 3; ++i)
            ASSERT_TRUE(ring.push(testPhase(i)));
        ring.fail(std::make_exception_ptr(
            std::runtime_error("producer exploded")));
    });
    producer.join();
    // The buffered prefix drains first...
    core::Phase scratch;
    for (u64 i = 0; i < 3; ++i) {
        ASSERT_TRUE(ring.pop(scratch));
        EXPECT_EQ(scratch.name, "phase" + std::to_string(i));
    }
    // ...then the producer's exception surfaces on the consumer side.
    EXPECT_THROW(ring.pop(scratch), std::runtime_error);
}

TEST(PhaseRing, CloseProducerEndsStreamWithoutError)
{
    core::PhaseRing ring(4);
    ring.closeProducer();
    core::Phase scratch;
    EXPECT_FALSE(ring.pop(scratch)); // empty stream, no blocking
}

// ---------------------------------------------------------------------
// Pipelined replay equivalence
// ---------------------------------------------------------------------

TEST(PipelineReplay, MatchesSerialStreamingAllDomains)
{
    // BP exercises the metadata cache, MGX the VN expansion path;
    // both must be bitwise-identical between a serial drain and the
    // two-thread ring in every domain.
    for (const char *workload : kDomainWorkloads) {
        for (Scheme scheme : {Scheme::NP, Scheme::MGX, Scheme::BP}) {
            const std::string label =
                std::string(workload) + "/" +
                protection::schemeName(scheme);
            const RunResult serial = runSerial(workload, scheme);
            const RunResult piped = runRingPipelined(workload, scheme);
            expectBitwiseEqual(serial, piped, label);
            // The serial run never saw a ring; the pipelined one did.
            EXPECT_EQ(serial.pipelineMaxOccupancy, 0u) << label;
            EXPECT_GE(piped.pipelineMaxOccupancy, 1u) << label;
            EXPECT_LE(piped.pipelineMaxOccupancy, 8u) << label;
        }
    }
}

TEST(PipelineReplay, InvariantUnderRingCapacity)
{
    const std::string w = "core/matmul?m=256&n=256&k=256";
    const RunResult one = runRingPipelined(w, Scheme::BP, 1);
    const RunResult two = runRingPipelined(w, Scheme::BP, 2);
    const RunResult big = runRingPipelined(w, Scheme::BP, 64);
    expectBitwiseEqual(one, two, "capacity 1 vs 2");
    expectBitwiseEqual(one, big, "capacity 1 vs 64");
    EXPECT_EQ(one.pipelineMaxOccupancy, 1u);
    EXPECT_LE(big.pipelineMaxOccupancy, 64u);
}

TEST(PipelineReplay, ProducerThrowSurfacesOnCallerWithoutDeadlock)
{
    /** Emits a few phases, then dies mid-stream. */
    class ThrowingSource final : public core::PhaseSource
    {
      public:
        bool
        nextChunk(core::PhaseSink &sink) override
        {
            if (emitted_ == 5)
                throw std::runtime_error("kernel stream failed");
            sink.consume(scratch_ = testPhase(emitted_++));
            return true;
        }

      private:
        u64 emitted_ = 0;
        core::Phase scratch_;
    };

    const Platform platform = edgePlatform();
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = Scheme::NP;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    ThrowingSource source;
    // A tiny ring so the producer is likely mid-push when it throws;
    // the exception must resurface here, with the producer joined.
    PipelineOptions options;
    options.ringCapacity = 1;
    EXPECT_THROW(runPipelined(model, source, options),
                 std::runtime_error);
}

TEST(PipelineReplay, ExperimentPipelinedGridMatchesSerial)
{
    const std::vector<std::string> ws = {
        "core/matmul?m=128&n=128&k=128",
        "graph/google-plus/pagerank?vector=random"};
    auto grid = [&](bool pipeline) {
        return Experiment()
            .workloads(ws)
            .platform(edgePlatform())
            .schemes({Scheme::NP, Scheme::MGX, Scheme::BP})
            .threads(2)
            .pipelined(pipeline)
            .run();
    };
    const ResultSet serial = grid(false);
    const ResultSet piped = grid(true);
    ASSERT_EQ(serial.records().size(), piped.records().size());
    for (std::size_t i = 0; i < serial.records().size(); ++i) {
        expectBitwiseEqual(serial.records()[i].result,
                           piped.records()[i].result,
                           piped.records()[i].key.workload);
        EXPECT_GE(piped.records()[i].result.pipelineMaxOccupancy, 1u);
    }
}

TEST(PipelineReplay, RingCapacityInvarianceThroughExperiment)
{
    auto run = [](std::size_t capacity) {
        return Experiment()
            .workload("video/h264?frames=4")
            .schemes({Scheme::BP})
            .threads(2)
            .pipelined(true)
            .pipelineRingCapacity(capacity)
            .run();
    };
    const ResultSet one = run(1);
    const ResultSet big = run(64);
    ASSERT_EQ(one.records().size(), 1u);
    ASSERT_EQ(big.records().size(), 1u);
    expectBitwiseEqual(one.records()[0].result, big.records()[0].result,
                       "experiment ring capacity 1 vs 64");
}

// ---------------------------------------------------------------------
// Trace-cache tee
// ---------------------------------------------------------------------

TEST(PipelineTraceCache, TeePopulatesCacheWhileReplaying)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_pipeline_tee_test";
    fs::remove_all(dir);

    const std::string w = "core/matmul?m=128&n=128&k=128";
    const RunResult baseline = runSerial(w, Scheme::BP);

    // Single-cell grid + pipeline + cold cache: the producer tees the
    // kernel stream into the cache file while this run replays it —
    // one kernel execution, cache populated, result identical.
    auto cached = [&] {
        return Experiment()
            .workload(w)
            .schemes({Scheme::BP})
            .threads(2)
            .pipelined(true)
            .traceCacheDir(dir.string())
            .run();
    };
    const ResultSet cold = cached();
    EXPECT_EQ(cold.traceCacheMisses(), 1u);
    EXPECT_EQ(cold.traceCacheHits(), 0u);
    ASSERT_EQ(cold.records().size(), 1u);
    expectBitwiseEqual(baseline, cold.records()[0].result, "cold tee");

    // Exactly one published trace file, byte-equivalent to the
    // kernel's materialized trace (no half-written temporary left).
    // The per-key .lock file stays behind on purpose: unlinking it
    // would race other lockers onto a fresh inode.
    std::vector<fs::path> files;
    std::size_t locks = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".lock")
            ++locks;
        else
            files.push_back(e.path());
    }
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(locks, 1u);
    EXPECT_EQ(files[0].extension(), ".trace");
    core::Trace expected = makeKernel(w)->generate();
    EXPECT_EQ(traceToString(readTraceFile(files[0].string())),
              traceToString(expected));

    // The warm run replays the teed file — a hit, same results.
    const ResultSet warm = cached();
    EXPECT_EQ(warm.traceCacheHits(), 1u);
    EXPECT_EQ(warm.traceCacheMisses(), 0u);
    expectBitwiseEqual(baseline, warm.records()[0].result, "warm tee");
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Trace-cache eviction races
// ---------------------------------------------------------------------

TEST(EvictionRace, MidReadUnlinkStillDrainsTheWholeTrace)
{
    // A FilePhaseSource caught mid-phase by an eviction must finish
    // its pass: on POSIX the open descriptor outlives the unlink, so
    // the reader sees the complete, unmodified trace.
    const fs::path dir =
        fs::temp_directory_path() / "mgx_midread_unlink_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string file = (dir / "victim.trace").string();

    core::Trace trace = makeKernel("video/h264?frames=6")->generate();
    ASSERT_GT(trace.size(), 4u);
    writeTraceFile(trace, file);

    core::Trace rebuilt;
    core::TraceBuildSink sink(rebuilt);
    FilePhaseSource source(file);
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(source.nextChunk(sink)); // reader is mid-trace
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), 0), 1u);
    EXPECT_FALSE(fs::exists(file)); // evicted under the reader
    while (source.nextChunk(sink)) {
    }
    EXPECT_EQ(traceToString(rebuilt), traceToString(trace));
    fs::remove_all(dir);
}

TEST(EvictionRace, ConcurrentEvictorStaysBitwiseIdentical)
{
    // Hammer the cache directory with an evictor thread while cells
    // replay from it, serial and pipelined: whether a cell wins the
    // race (replays the file) or loses it (openIfReadable fails and
    // it falls back to streaming the kernel), every result must equal
    // the uncached baseline.
    const fs::path dir =
        fs::temp_directory_path() / "mgx_evict_race_test";
    fs::remove_all(dir);

    const std::string w = "core/matmul?m=128&n=128&k=128";
    const RunResult baseline = runSerial(w, Scheme::BP);

    std::atomic<bool> stop{false};
    std::thread evictor([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            enforceTraceCacheLimit(dir.string(), 0);
            std::this_thread::yield();
        }
    });
    for (int i = 0; i < 12; ++i) {
        const ResultSet rs = Experiment()
                                 .workload(w)
                                 .schemes({Scheme::BP})
                                 .threads(2)
                                 .pipelined(i % 2 == 1)
                                 .traceCacheDir(dir.string())
                                 .run();
        ASSERT_EQ(rs.records().size(), 1u);
        expectBitwiseEqual(baseline, rs.records()[0].result,
                           "race iteration " + std::to_string(i));
    }
    stop.store(true, std::memory_order_relaxed);
    evictor.join();
    fs::remove_all(dir);
}

TEST(EvictionRace, ForeignProcessEvictorStaysBitwiseIdentical)
{
    // Same contract as above, but the evictor is another *process*
    // (a shell rm-loop), so it exercises the cross-process story:
    // atomic tmp+rename publishes, the per-key flock, and the
    // open-then-probe fallbacks — a foreign unlink can land between
    // any two filesystem calls here, which no in-process evictor
    // interleaving guarantees.
    const fs::path dir =
        fs::temp_directory_path() / "mgx_foreign_evict_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string stop_flag = (dir / "stop.flag").string();

    const std::string w = "core/matmul?m=128&n=128&k=128";
    const RunResult baseline = runSerial(w, Scheme::BP);
    // The materialized path's own baseline: its footprint fields
    // (traceBytes, peakPhaseBytes) describe holding the whole trace,
    // so they differ from the streamed run's by design.
    const ResultSet materialized_rs = Experiment()
                                          .workload(w)
                                          .schemes({Scheme::BP})
                                          .threads(1)
                                          .streaming(false)
                                          .run();
    ASSERT_EQ(materialized_rs.records().size(), 1u);
    const RunResult baseline_mat = materialized_rs.records()[0].result;

    const std::string cmd = "while [ ! -e '" + stop_flag +
                            "' ]; do rm -f '" + dir.string() +
                            "'/*.trace 2>/dev/null; done";
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Exec immediately: nothing but the shell runs in the child,
        // which keeps the fork safe under ThreadSanitizer.
        ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }

    for (int i = 0; i < 9; ++i) {
        // Rotate the replay mode so the foreign unlink hits the
        // streamed, pipelined and materialized cache paths in turn.
        Experiment e;
        e.workload(w)
            .schemes({Scheme::BP})
            .threads(2)
            .traceCacheDir(dir.string());
        if (i % 3 == 0)
            e.pipelined(false);
        else if (i % 3 == 1)
            e.pipelined(true);
        else
            e.streaming(false);
        const ResultSet rs = e.run();
        ASSERT_EQ(rs.records().size(), 1u);
        expectBitwiseEqual(i % 3 == 2 ? baseline_mat : baseline,
                           rs.records()[0].result,
                           "foreign-evictor iteration " +
                               std::to_string(i));
    }

    std::ofstream(stop_flag) << "stop\n";
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Trace-cache key locks (cross-process generate-once)
// ---------------------------------------------------------------------

TEST(TraceCacheLockTest, ConcurrentMissesGenerateExactlyOnce)
{
    // The probe / lock / re-probe pattern Experiment::run uses around
    // cache misses: whoever wins the flock generates; everyone else
    // re-probes under the lock and finds the published file.
    const fs::path dir =
        fs::temp_directory_path() / "mgx_cachelock_once_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string file = (dir / "key.trace").string();

    const core::Trace trace =
        makeKernel("video/h264?frames=2")->generate();
    std::atomic<int> generations{0};

    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&] {
            if (readTraceFileIfReadable(file))
                return;
            TraceCacheLock lock(file);
            if (readTraceFileIfReadable(file))
                return; // someone generated while we waited
            writeTraceFile(trace, file);
            generations.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(generations.load(), 1);
    const auto readback = readTraceFileIfReadable(file);
    ASSERT_TRUE(readback.has_value());
    EXPECT_EQ(traceToString(*readback), traceToString(trace));
    // The lock file is deliberately left behind (unlink would race);
    // eviction never touches it because it only deletes *.trace.
    EXPECT_TRUE(fs::exists(file + ".lock"));
    enforceTraceCacheLimit(dir.string(), 0);
    EXPECT_FALSE(fs::exists(file));
    EXPECT_TRUE(fs::exists(file + ".lock"));
    fs::remove_all(dir);
}

TEST(TraceCacheLockTest, SecondLockerBlocksUntilRelease)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_cachelock_block_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string file = (dir / "key.trace").string();

    std::atomic<bool> holding{false};
    std::atomic<bool> released{false};

    std::thread holder([&] {
        TraceCacheLock lock(file);
        holding.store(true, std::memory_order_release);
        // Hold long enough that the contender is provably blocked in
        // its constructor before we let go.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        released.store(true, std::memory_order_release);
    });

    while (!holding.load(std::memory_order_acquire))
        std::this_thread::yield();
    TraceCacheLock lock(file); // blocks until the holder's dtor
    EXPECT_TRUE(released.load(std::memory_order_acquire));
    holder.join();
    fs::remove_all(dir);
}

} // namespace
} // namespace mgx::sim
