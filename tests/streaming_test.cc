/**
 * @file
 * Streaming-pipeline tests: streamed-vs-materialized bitwise
 * equivalence for all five domains (cycles, traffic, metaCache
 * counters), the PhaseSource chunk-boundary property (results
 * invariant under chunk size 1 / 64 / infinity), streaming trace-file
 * round trips, the trace-cache LRU eviction policy, and the scaled
 * streaming-only workload registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>

#include "core/phase_stream.h"
#include "sim/experiment.h"
#include "sim/trace_io.h"
#include "sim/workload_registry.h"

namespace mgx::sim {
namespace {

namespace fs = std::filesystem;

using protection::ProtectionConfig;
using protection::ProtectionEngine;
using protection::Scheme;

/** One small, fast workload per domain. */
const char *const kDomainWorkloads[] = {
    "core/matmul?m=256&n=256&k=256",
    "dnn/MobileNet?task=training",
    "graph/google-plus/pagerank?vector=random",
    "genome/chr1PacBio?reads=8",
    "video/h264?frames=6",
};

RunResult
runMaterialized(const std::string &workload, Scheme scheme)
{
    const Platform platform = defaultPlatform(workload);
    core::Trace trace = makeKernel(workload, platform)->generate();
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    return model.run(trace);
}

RunResult
runStreamed(const std::string &workload, Scheme scheme)
{
    const Platform platform = defaultPlatform(workload);
    dram::DramSystem dram(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = scheme;
    ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, platform.clockMhz);
    auto kernel = makeKernel(workload, platform);
    auto source = kernel->stream();
    return model.run(*source);
}

/** Every model output must match; the footprint fields may not. */
void
expectModelOutputsEqual(const RunResult &a, const RunResult &b,
                        const std::string &label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << label;
    EXPECT_EQ(a.memoryCycles, b.memoryCycles) << label;
    EXPECT_EQ(a.traffic.dataBytes, b.traffic.dataBytes) << label;
    EXPECT_EQ(a.traffic.expandBytes, b.traffic.expandBytes) << label;
    EXPECT_EQ(a.traffic.macBytes, b.traffic.macBytes) << label;
    EXPECT_EQ(a.traffic.vnBytes, b.traffic.vnBytes) << label;
    EXPECT_EQ(a.traffic.treeBytes, b.traffic.treeBytes) << label;
    EXPECT_EQ(a.dramAccesses, b.dramAccesses) << label;
    EXPECT_EQ(a.logicalAccesses, b.logicalAccesses) << label;
    EXPECT_EQ(a.metaCacheHits, b.metaCacheHits) << label;
    EXPECT_EQ(a.metaCacheMisses, b.metaCacheMisses) << label;
    EXPECT_EQ(a.metaCacheWritebacks, b.metaCacheWritebacks) << label;
    EXPECT_EQ(a.seconds, b.seconds) << label;
}

// ---------------------------------------------------------------------
// Streamed vs materialized equivalence
// ---------------------------------------------------------------------

TEST(Streaming, StreamIntoArenaEqualsGenerate)
{
    // generate() is literally "stream into an arena", so a manual
    // drain of a fresh kernel must serialize identically.
    for (const char *workload : kDomainWorkloads) {
        core::Trace generated = makeKernel(workload)->generate();
        core::Trace drained;
        core::TraceBuildSink sink(drained);
        makeKernel(workload)->stream()->drainTo(sink);
        EXPECT_EQ(traceToString(generated), traceToString(drained))
            << workload;
    }
}

TEST(Streaming, StreamedReplayMatchesMaterializedAllDomains)
{
    // BP exercises the metadata cache (hits/misses/writebacks) and
    // MGX the VN expansion path; both must be bitwise-identical
    // between the two replay paths in every domain.
    for (const char *workload : kDomainWorkloads) {
        for (Scheme scheme : {Scheme::NP, Scheme::MGX, Scheme::BP}) {
            const RunResult mat = runMaterialized(workload, scheme);
            const RunResult str = runStreamed(workload, scheme);
            expectModelOutputsEqual(
                mat, str,
                std::string(workload) + "/" +
                    protection::schemeName(scheme));
            // The streamed peak must be genuinely bounded: far below
            // holding the whole trace (phase count >> 1 here), and
            // by construction never above the cumulative stream.
            EXPECT_GT(str.peakPhaseBytes, 0u) << workload;
            EXPECT_LE(str.peakPhaseBytes, str.traceBytes) << workload;
            EXPECT_LT(str.peakPhaseBytes, mat.peakPhaseBytes)
                << workload;
        }
    }
}

TEST(Streaming, ExperimentStreamedAndMaterializedGridsMatch)
{
    const std::string w = "core/matmul?m=256&n=256&k=256";
    auto grid = [&](bool streaming) {
        return Experiment()
            .workload(w)
            .platform(edgePlatform())
            .schemes(allSchemes())
            .streaming(streaming)
            .run();
    };
    ResultSet streamed = grid(true);
    ResultSet materialized = grid(false);
    ASSERT_EQ(streamed.records().size(), materialized.records().size());
    for (std::size_t i = 0; i < streamed.records().size(); ++i)
        expectModelOutputsEqual(streamed.records()[i].result,
                                materialized.records()[i].result,
                                "grid cell " + std::to_string(i));
}

// ---------------------------------------------------------------------
// Chunk-boundary property
// ---------------------------------------------------------------------

TEST(Streaming, ResultsInvariantUnderChunkSize)
{
    const std::string w = "core/matmul?m=256&n=256&k=256";
    core::Trace trace = makeKernel(w)->generate();
    const Platform platform = defaultPlatform(w);

    auto replayChunked = [&](std::size_t chunk) {
        dram::DramSystem dram(platform.dram);
        ProtectionConfig cfg;
        cfg.scheme = Scheme::BP;
        ProtectionEngine engine(cfg, &dram);
        PerfModel model(&engine, platform.clockMhz);
        core::TracePhaseSource source(trace, chunk);
        return model.run(source);
    };

    const RunResult one = replayChunked(1);
    const RunResult sixtyFour = replayChunked(64);
    const RunResult unbounded = replayChunked(trace.size() + 1);
    expectModelOutputsEqual(one, sixtyFour, "chunk 1 vs 64");
    expectModelOutputsEqual(one, unbounded, "chunk 1 vs unbounded");

    // And the chunked stream rebuilds the identical trace.
    for (std::size_t chunk : {std::size_t{1}, std::size_t{64},
                              trace.size() + 1}) {
        core::Trace rebuilt;
        core::TraceBuildSink sink(rebuilt);
        core::TracePhaseSource(trace, chunk).drainTo(sink);
        EXPECT_EQ(traceToString(trace), traceToString(rebuilt))
            << "chunk " << chunk;
    }
}

// ---------------------------------------------------------------------
// Streaming trace files
// ---------------------------------------------------------------------

TEST(Streaming, FileRoundTripMatchesMaterializedWriter)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_stream_io_test";
    fs::create_directories(dir);
    const std::string via_trace = (dir / "materialized.trace").string();
    const std::string via_stream = (dir / "streamed.trace").string();

    const std::string w = "video/h264?frames=6";
    core::Trace trace = makeKernel(w)->generate();
    writeTraceFile(trace, via_trace);

    // Stream a fresh kernel straight to disk: byte-identical file.
    auto kernel = makeKernel(w);
    TraceFileWriteSink sink(via_stream);
    kernel->stream()->drainTo(sink);
    sink.finish();

    std::ifstream a(via_trace), b(via_stream);
    std::string file_a((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
    std::string file_b((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
    EXPECT_FALSE(file_a.empty());
    EXPECT_EQ(file_a, file_b);

    // Pull-based reading rebuilds the identical trace...
    core::Trace rebuilt;
    core::TraceBuildSink build(rebuilt);
    FilePhaseSource(via_stream).drainTo(build);
    EXPECT_EQ(traceToString(trace), traceToString(rebuilt));

    // ...and replays bitwise-identically to the materialized path.
    const Platform platform = defaultPlatform(w);
    dram::DramSystem dram_a(platform.dram);
    ProtectionConfig cfg;
    cfg.scheme = Scheme::BP;
    ProtectionEngine engine_a(cfg, &dram_a);
    PerfModel model_a(&engine_a, platform.clockMhz);
    const RunResult mat = model_a.run(trace);

    dram::DramSystem dram_b(platform.dram);
    ProtectionEngine engine_b(cfg, &dram_b);
    PerfModel model_b(&engine_b, platform.clockMhz);
    FilePhaseSource source(via_stream);
    const RunResult str = model_b.run(source);
    expectModelOutputsEqual(mat, str, "file replay");

    fs::remove_all(dir);
}

TEST(Streaming, AbandonedFileWriteLeavesNothingBehind)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_stream_abandon_test";
    fs::create_directories(dir);
    {
        TraceFileWriteSink sink((dir / "never.trace").string());
        core::Phase p;
        p.name = "p0";
        p.accesses.push_back(
            {0, 64, 1, AccessType::Write, DataClass::Generic, 0});
        sink.consume(p);
        // no finish(): the write is abandoned
    }
    EXPECT_TRUE(fs::is_empty(dir));
    fs::remove_all(dir);
}

TEST(StreamingErrors, MalformedFilesThrowWithLineNumbers)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_stream_bad_test";
    fs::create_directories(dir);
    const std::string path = (dir / "bad.trace").string();
    {
        std::ofstream out(path);
        out << "P p0 1\nA r 0 64 nonsense 1 0\n";
    }
    class NullSink final : public core::PhaseSink
    {
        void consume(const core::Phase &) override {}
    };
    try {
        NullSink sink;
        FilePhaseSource(path).drainTo(sink);
        FAIL() << "malformed trace parsed without error";
    } catch (const TraceIoError &e) {
        EXPECT_NE(
            std::string(e.what()).find("trace line 2: unknown data "
                                       "class"),
            std::string::npos)
            << e.what();
    }
    EXPECT_THROW(FilePhaseSource("/nonexistent/nope.trace"),
                 TraceIoError);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Trace-cache LRU eviction
// ---------------------------------------------------------------------

/** Make a cache-like file of @p bytes with an mtime @p age_s ago. */
void
makeCacheFile(const fs::path &path, std::size_t bytes, int age_s)
{
    std::ofstream out(path);
    out << std::string(bytes, 'x');
    out.close();
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(age_s));
}

TEST(TraceCacheEviction, OldestFilesGoFirstAndCapIsRespected)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_evict_order_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    makeCacheFile(dir / "old.trace", 100, 300);
    makeCacheFile(dir / "mid.trace", 100, 200);
    makeCacheFile(dir / "new.trace", 100, 100);
    makeCacheFile(dir / "unrelated.json", 100, 400); // never touched

    // Cap fits two trace files: only the oldest is evicted.
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), 200), 1u);
    EXPECT_FALSE(fs::exists(dir / "old.trace"));
    EXPECT_TRUE(fs::exists(dir / "mid.trace"));
    EXPECT_TRUE(fs::exists(dir / "new.trace"));
    EXPECT_TRUE(fs::exists(dir / "unrelated.json"));

    // Cap of zero clears every .trace file, nothing else.
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), 0), 2u);
    EXPECT_FALSE(fs::exists(dir / "mid.trace"));
    EXPECT_FALSE(fs::exists(dir / "new.trace"));
    EXPECT_TRUE(fs::exists(dir / "unrelated.json"));

    // Under the cap: nothing to do. Missing dir: tolerated.
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), 1 << 20), 0u);
    fs::remove_all(dir);
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), 0), 0u);
}

TEST(TraceCacheEviction, HitsTouchTheFileSoLruKeepsHotTraces)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_evict_touch_test";
    fs::remove_all(dir);

    const std::string hot = "core/matmul?m=64&n=64&k=64";
    const std::string cold = "video/h264?frames=2";
    auto runOne = [&](const std::string &w) {
        Experiment()
            .workload(w)
            .schemes({Scheme::NP})
            .traceCacheDir(dir.string())
            .run();
    };
    runOne(hot);
    runOne(cold);

    // Age both files, then hit only the hot one: the hit must refresh
    // its mtime so eviction prefers the cold file despite the cold
    // file being written later.
    // Count only the traces: the per-key .lock files stay behind on
    // purpose (unlinking them would race other lockers).
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".trace")
            files.push_back(e.path());
    ASSERT_EQ(files.size(), 2u);
    for (const auto &f : files)
        fs::last_write_time(f, fs::file_time_type::clock::now() -
                                   std::chrono::hours(1));
    ResultSet rs = Experiment()
                       .workload(hot)
                       .schemes({Scheme::NP})
                       .traceCacheDir(dir.string())
                       .run();
    EXPECT_EQ(rs.traceCacheHits(), 1u);
    EXPECT_EQ(rs.traceCacheMisses(), 0u);

    // Cap that only fits one file: the untouched (cold) one goes.
    u64 hot_bytes = 0;
    for (const auto &e : fs::directory_iterator(dir))
        hot_bytes = std::max<u64>(hot_bytes, fs::file_size(e));
    EXPECT_EQ(enforceTraceCacheLimit(dir.string(), hot_bytes), 1u);
    std::size_t traces = 0;
    for (const auto &e : fs::directory_iterator(dir))
        traces += e.path().extension() == ".trace";
    ASSERT_EQ(traces, 1u);
    // The survivor still replays the hot workload from cache.
    ResultSet again = Experiment()
                          .workload(hot)
                          .schemes({Scheme::NP})
                          .traceCacheDir(dir.string())
                          .run();
    EXPECT_EQ(again.traceCacheHits(), 1u);
    fs::remove_all(dir);
}

TEST(TraceCacheEviction, ExperimentAppliesTheCapAfterTheRun)
{
    const fs::path dir =
        fs::temp_directory_path() / "mgx_evict_cap_test";
    fs::remove_all(dir);
    ResultSet rs = Experiment()
                       .workloads({"core/matmul?m=64&n=64&k=64",
                                   "video/h264?frames=2"})
                       .schemes({Scheme::NP})
                       .traceCacheDir(dir.string())
                       .traceCacheMaxBytes(1) // evicts everything
                       .run();
    EXPECT_EQ(rs.traceCacheMisses(), 2u);
    std::size_t traces = 0;
    for (const auto &e : fs::directory_iterator(dir))
        traces += e.path().extension() == ".trace";
    EXPECT_EQ(traces, 0u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Scaled streaming-only workloads
// ---------------------------------------------------------------------

TEST(ScaledWorkloads, OnePerDomainAndAllConstructAndStream)
{
    const auto scaled = listScaledWorkloads();
    ASSERT_EQ(scaled.size(), 5u);

    // Not part of the canonical list (they would blow up --all and
    // every materializing consumer).
    const auto canonical = listWorkloads();
    std::set<std::string> domains;
    for (const auto &name : scaled) {
        EXPECT_EQ(std::count(canonical.begin(), canonical.end(), name),
                  0)
            << name;
        domains.insert(name.substr(0, name.find('/')));

        // Constructing and pulling the first chunks must be cheap —
        // that is the whole point of the streaming path.
        auto kernel = makeKernel(name);
        ASSERT_NE(kernel, nullptr) << name;
        core::Trace head;
        core::TraceBuildSink sink(head);
        auto source = kernel->stream();
        for (int i = 0; i < 3 && source->nextChunk(sink); ++i) {
        }
        EXPECT_FALSE(head.empty()) << name;
    }
    EXPECT_EQ(domains.size(), 5u); // one per domain
}

TEST(ScaledWorkloads, WholeChromosomeAliasScalesWithCoverage)
{
    // genome/chr1 defaults to ~1x coverage of GRCh38 chr1 — orders of
    // magnitude more reads than the figure subset — and still honours
    // an explicit reads= override.
    auto small = makeKernel("genome/chr1?reads=4");
    ASSERT_NE(small, nullptr);
    core::Trace head;
    core::TraceBuildSink sink(head);
    auto source = small->stream();
    while (source->nextChunk(sink)) {
    }
    EXPECT_FALSE(head.empty());
    EXPECT_EQ(makeKernel("genome/chr1")->name(), "chr1PacBio");
}

} // namespace
} // namespace mgx::sim
